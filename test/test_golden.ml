open Helpers

(* Golden flooding results: exact trajectories, arrival vectors and
   mean_time summaries per model family, pinned so that optimisations
   cannot silently change behaviour. The determinism contract is
   byte-identical results across `--jobs` worker counts and seeds;
   cross-version trajectory stability is NOT part of the contract, so a
   PR that deliberately changes an RNG draw sequence or an edge
   enumeration order regenerates these literals once with
   `dune exec bin/regen_golden.exe` and says so in the changelog
   (policy: DESIGN.md, "Golden tests and regeneration policy").
   Last regenerated for PR 5, for two deliberate stream changes: the
   frontier flooding kernel draws Push coins in active-node scan order
   (and its adjacency rebuilds re-order rows under high churn), moving
   the push.* suites on delta-capable models; and {!Edge_meg.Classic}
   switched its scan skips to the tabulated {!Prng.Rng.Geo} sampler,
   moving every edge_meg_classic golden (flood, push, parsimonious,
   mean_time). All other literals are unchanged. *)

let node_chain =
  Markov.Chain.of_rows
    (Array.init 8 (fun s ->
         Array.append [| ((s + 1) mod 8, 0.8) |] (Array.init 8 (fun t -> (t, 0.025)))))

let node_connect x y =
  let d = abs (x - y) in
  min d (8 - d) <= 1

let grid_family = Random_path.Family.grid_shortest ~rows:5 ~cols:5

let builders : (string * (unit -> Core.Dynamic.t)) list =
  [
    ("edge_meg_classic", fun () -> Edge_meg.Classic.make ~n:48 ~p:(3. /. 48.) ~q:0.4 ());
    ( "edge_meg_opportunistic",
      fun () ->
        Edge_meg.Opportunistic.make ~n:24
          {
            Edge_meg.Opportunistic.off_short = 2.;
            off_long = 8.;
            off_mix = 0.7;
            on_short = 1.5;
            on_long = 4.;
            on_mix = 0.6;
          } );
    ("node_meg", fun () -> Node_meg.Model.make ~n:40 ~chain:node_chain ~connect:node_connect ());
    ( "waypoint",
      fun () ->
        Mobility.Geo.dynamic (Mobility.Waypoint.create ~n:40 ~l:6. ~r:1.5 ~v_min:1. ~v_max:1.25 ())
    );
    ("random_walk", fun () -> Mobility.Random_walk_model.dynamic ~n:32 ~m:6 ~r:1.1 ());
    ("rp_model", fun () -> Random_path.Rp_model.make ~hold:0.5 ~n:30 ~family:grid_family ());
    ("rotating_star", fun () -> Adversarial.Model.rotating_star ~n:16);
    ( "filtered_complete",
      fun () ->
        Core.Dynamic.filter_edges ~p_keep:0.3 (Core.Dynamic.of_static (Graph.Builders.complete 20))
    );
    ( "union_star_matching",
      fun () ->
        Core.Dynamic.union
          (Adversarial.Model.rotating_star ~n:16)
          (Adversarial.Model.rotating_matching ~n:16) );
  ]

let build name = (List.assoc name builders) ()

let check_result name ~time ~trajectory ~arrivals (r : Core.Flooding.result) =
  (match (time, r.time) with
  | Some t, Some t' -> Alcotest.(check int) (name ^ " time") t t'
  | None, None -> ()
  | _ ->
      Alcotest.failf "%s time: expected %s, got %s" name
        (match time with Some t -> string_of_int t | None -> "None")
        (match r.time with Some t -> string_of_int t | None -> "None"));
  Alcotest.(check (array int)) (name ^ " trajectory") trajectory r.trajectory;
  Alcotest.(check (array int)) (name ^ " arrivals") arrivals r.arrivals

(* A capped run's trajectory is a short prefix followed by a constant
   plateau; assert the structure instead of embedding cap+1 literals. *)
let check_capped name ~cap ~prefix ~plateau ~arrivals (r : Core.Flooding.result) =
  check_true (name ^ " hit the cap") (r.time = None);
  Alcotest.(check int) (name ^ " trajectory length") (cap + 1) (Array.length r.trajectory);
  Alcotest.(check (array int))
    (name ^ " trajectory prefix") prefix
    (Array.sub r.trajectory 0 (Array.length prefix));
  Array.iteri
    (fun i x ->
      if i >= Array.length prefix && x <> plateau then
        Alcotest.failf "%s trajectory.(%d): expected plateau %d, got %d" name i plateau x)
    r.trajectory;
  Alcotest.(check (array int)) (name ^ " arrivals") arrivals r.arrivals

let flood name = Core.Flooding.run ~rng:(rng_of_seed 42) ~source:0 (build name)

let push name =
  Core.Flooding.run ~protocol:(Core.Flooding.Push 0.35) ~rng:(rng_of_seed 42) ~source:0
    (build name)

let pars name =
  Core.Flooding.run ~protocol:(Core.Flooding.Parsimonious 2) ~cap:400 ~rng:(rng_of_seed 7)
    ~source:1 (build name)

(* --- plain flooding, seed 42, source 0 --- *)

let test_flood_edge_meg_classic () =
  check_result "edge_meg_classic" ~time:(Some 3)
    ~trajectory:[| 1; 10; 40; 48 |]
    ~arrivals:
      [|
        0; 1; 3; 1; 1; 2; 2; 2; 2; 3; 2; 2; 3; 1; 2; 1; 3; 2; 3; 2; 3; 2; 2; 2; 2; 2; 2; 2; 2; 1;
        2; 2; 1; 2; 2; 3; 2; 2; 2; 2; 2; 2; 2; 3; 2; 1; 2; 1;
      |]
    (flood "edge_meg_classic")

let test_flood_opportunistic () =
  check_result "edge_meg_opportunistic" ~time:(Some 2)
    ~trajectory:[| 1; 10; 24 |]
    ~arrivals:[| 0; 2; 2; 2; 2; 1; 1; 1; 1; 2; 2; 1; 2; 2; 1; 2; 2; 1; 2; 2; 2; 1; 2; 1 |]
    (flood "edge_meg_opportunistic")

let test_flood_node_meg () =
  check_result "node_meg" ~time:(Some 2)
    ~trajectory:[| 1; 18; 40 |]
    ~arrivals:
      [|
        0; 2; 1; 1; 2; 1; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1; 1; 2; 1; 1; 2; 1; 2; 1; 1; 2; 1; 2; 2; 1;
        2; 2; 1; 2; 1; 2; 1; 1; 2; 2;
      |]
    (flood "node_meg")

let test_flood_waypoint () =
  check_result "waypoint" ~time:(Some 5)
    ~trajectory:[| 1; 4; 15; 31; 39; 40 |]
    ~arrivals:
      [|
        0; 2; 4; 3; 3; 2; 5; 3; 4; 4; 1; 3; 3; 4; 3; 2; 3; 4; 1; 2; 3; 2; 3; 3; 3; 1; 4; 3; 3; 2;
        3; 3; 3; 4; 4; 2; 2; 2; 2; 2;
      |]
    (flood "waypoint")

let test_flood_random_walk () =
  check_result "random_walk" ~time:(Some 4)
    ~trajectory:[| 1; 5; 17; 28; 32 |]
    ~arrivals:
      [|
        0; 2; 3; 2; 2; 3; 2; 3; 3; 1; 2; 4; 3; 3; 3; 2; 1; 4; 3; 2; 2; 2; 2; 3; 2; 1; 3; 3; 2; 1;
        4; 4;
      |]
    (flood "random_walk")

let test_flood_rp_model () =
  check_result "rp_model" ~time:(Some 17)
    ~trajectory:[| 1; 1; 2; 3; 4; 7; 11; 11; 15; 21; 21; 23; 26; 26; 28; 28; 28; 30 |]
    ~arrivals:
      [|
        0; 11; 9; 12; 5; 8; 4; 6; 14; 14; 6; 12; 9; 9; 17; 3; 5; 9; 9; 12; 17; 9; 11; 6; 2; 6; 8;
        8; 5; 8;
      |]
    (flood "rp_model")

let test_flood_rotating_star () =
  check_result "rotating_star" ~time:(Some 15)
    ~trajectory:[| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15; 16 |]
    ~arrivals:[| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |]
    (flood "rotating_star")

let test_flood_filtered () =
  check_result "filtered_complete" ~time:(Some 3)
    ~trajectory:[| 1; 7; 19; 20 |]
    ~arrivals:[| 0; 2; 1; 2; 1; 2; 2; 3; 1; 2; 2; 2; 2; 2; 1; 2; 2; 2; 1; 1 |]
    (flood "filtered_complete")

let test_flood_union () =
  check_result "union_star_matching" ~time:(Some 3)
    ~trajectory:[| 1; 2; 4; 16 |]
    ~arrivals:[| 0; 1; 2; 2; 3; 3; 3; 3; 3; 3; 3; 3; 3; 3; 3; 3 |]
    (flood "union_star_matching")

(* --- Push(0.35), seed 42, source 0: enumeration-order sensitive --- *)

let test_push_edge_meg_classic () =
  check_result "push.edge_meg_classic" ~time:(Some 7)
    ~trajectory:[| 1; 7; 20; 36; 45; 46; 47; 48 |]
    ~arrivals:
      [|
        0; 1; 3; 1; 2; 3; 7; 4; 4; 3; 4; 6; 3; 1; 3; 1; 4; 3; 3; 3; 5; 2; 4; 3; 2; 2; 3; 2; 3; 1;
        2; 3; 4; 2; 2; 4; 4; 2; 2; 4; 2; 3; 2; 3; 3; 1; 3; 2;
      |]
    (push "edge_meg_classic")

let test_push_opportunistic () =
  check_result "push.edge_meg_opportunistic" ~time:(Some 3)
    ~trajectory:[| 1; 7; 19; 24 |]
    ~arrivals:[| 0; 3; 2; 2; 2; 1; 1; 3; 1; 2; 3; 1; 2; 3; 1; 2; 2; 2; 2; 3; 2; 1; 2; 2 |]
    (push "edge_meg_opportunistic")

let test_push_node_meg () =
  check_result "push.node_meg" ~time:(Some 4)
    ~trajectory:[| 1; 12; 31; 37; 40 |]
    ~arrivals:
      [|
        0; 2; 1; 1; 2; 1; 2; 3; 1; 3; 2; 3; 2; 2; 2; 1; 1; 2; 2; 2; 4; 1; 3; 2; 2; 2; 1; 4; 3; 1;
        2; 2; 2; 3; 2; 2; 1; 1; 4; 2;
      |]
    (push "node_meg")

let test_push_waypoint () =
  check_result "push.waypoint" ~time:(Some 7)
    ~trajectory:[| 1; 3; 12; 23; 33; 37; 39; 40 |]
    ~arrivals:
      [|
        0; 2; 4; 4; 3; 3; 6; 5; 7; 4; 1; 5; 4; 4; 3; 2; 5; 4; 1; 2; 3; 3; 3; 4; 4; 2; 4; 4; 3; 2;
        3; 3; 3; 6; 5; 2; 2; 2; 3; 2;
      |]
    (push "waypoint")

let test_push_random_walk () =
  check_result "push.random_walk" ~time:(Some 7)
    ~trajectory:[| 1; 4; 12; 17; 25; 31; 31; 32 |]
    ~arrivals:
      [|
        0; 3; 7; 2; 2; 5; 2; 4; 4; 2; 5; 4; 5; 3; 4; 2; 1; 5; 5; 2; 4; 3; 2; 3; 2; 1; 4; 5; 3; 1;
        4; 4;
      |]
    (push "random_walk")

let test_push_rp_model () =
  check_result "push.rp_model" ~time:(Some 22)
    ~trajectory:
      [| 1; 1; 2; 3; 4; 6; 8; 9; 12; 15; 16; 16; 17; 18; 20; 22; 25; 26; 27; 29; 29; 29; 30 |]
    ~arrivals:
      [|
        0; 18; 9; 22; 5; 8; 4; 6; 15; 16; 14; 16; 9; 10; 19; 3; 5; 9; 13; 12; 17; 19; 16; 8; 2; 7;
        15; 14; 6; 8;
      |]
    (push "rp_model")

let test_push_filtered () =
  check_result "push.filtered_complete" ~time:(Some 4)
    ~trajectory:[| 1; 6; 14; 17; 20 |]
    ~arrivals:[| 0; 2; 1; 2; 1; 3; 4; 4; 2; 2; 3; 2; 2; 2; 1; 4; 2; 3; 1; 1 |]
    (push "filtered_complete")

let test_push_union () =
  check_result "push.union_star_matching" ~time:(Some 8)
    ~trajectory:[| 1; 2; 4; 11; 13; 14; 14; 15; 16 |]
    ~arrivals:[| 0; 1; 2; 2; 3; 3; 5; 7; 4; 3; 3; 4; 3; 3; 3; 8 |]
    (push "union_star_matching")

(* --- Parsimonious(2), cap 400, seed 7, source 1: exercises informed_at --- *)

let test_pars_edge_meg_classic () =
  check_result "pars.edge_meg_classic" ~time:(Some 3)
    ~trajectory:[| 1; 10; 38; 48 |]
    ~arrivals:
      [|
        2; 0; 3; 2; 2; 2; 2; 3; 1; 2; 2; 2; 2; 3; 2; 3; 1; 3; 2; 2; 3; 2; 1; 3; 2; 2; 1; 2; 1; 2;
        2; 2; 2; 2; 1; 1; 1; 3; 2; 2; 2; 2; 2; 2; 3; 1; 3; 2;
      |]
    (pars "edge_meg_classic")

let test_pars_node_meg () =
  check_result "pars.node_meg" ~time:(Some 2)
    ~trajectory:[| 1; 13; 40 |]
    ~arrivals:
      [|
        2; 0; 2; 2; 1; 1; 2; 2; 2; 1; 2; 2; 1; 2; 1; 2; 2; 1; 2; 1; 1; 2; 2; 1; 1; 2; 1; 2; 2; 2;
        2; 2; 2; 2; 2; 2; 2; 2; 2; 1;
      |]
    (pars "node_meg")

let test_pars_waypoint () =
  check_result "pars.waypoint" ~time:(Some 4)
    ~trajectory:[| 1; 12; 34; 39; 40 |]
    ~arrivals:
      [|
        1; 0; 2; 3; 1; 1; 2; 1; 2; 2; 2; 1; 3; 2; 2; 2; 2; 2; 1; 2; 2; 2; 1; 2; 2; 4; 2; 2; 3; 3;
        1; 2; 2; 3; 1; 1; 2; 1; 2; 2;
      |]
    (pars "waypoint")

let test_pars_random_walk_capped () =
  check_capped "pars.random_walk" ~cap:400 ~prefix:[| 1; 6; 7; 8 |] ~plateau:11
    ~arrivals:
      [|
        -1; 0; 4; -1; 1; -1; -1; -1; -1; -1; -1; -1; 1; -1; -1; 4; -1; -1; -1; -1; 3; 2; -1; -1; 1;
        1; -1; -1; 4; -1; 1; -1;
      |]
    (pars "random_walk")

let test_pars_rp_model_capped () =
  check_capped "pars.rp_model" ~cap:400
    ~prefix:[| 1; 2; 3; 4; 4; 5; 6; 7; 8 |]
    ~plateau:9
    ~arrivals:
      [|
        -1; 0; 5; 2; 1; -1; -1; 9; -1; -1; -1; -1; -1; -1; -1; -1; 7; -1; -1; 8; 3; -1; -1; -1; -1;
        6; -1; -1; -1; -1;
      |]
    (pars "rp_model")

let test_pars_rotating_star () =
  check_result "pars.rotating_star" ~time:(Some 1) ~trajectory:[| 1; 16 |]
    ~arrivals:[| 1; 0; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1 |]
    (pars "rotating_star")

let test_pars_filtered () =
  check_result "pars.filtered_complete" ~time:(Some 2)
    ~trajectory:[| 1; 8; 20 |]
    ~arrivals:[| 2; 0; 2; 2; 2; 2; 2; 1; 2; 2; 1; 2; 1; 1; 1; 1; 2; 2; 2; 1 |]
    (pars "filtered_complete")

(* --- mean_time: both acceptance seeds, sequential and 4 workers --- *)

let check_mean_time ~seed ~jobs ~mean ~stddev ~max =
  let s =
    Core.Flooding.mean_time ~sched:(Exec.of_int jobs) ~rng:(rng_of_seed seed) ~trials:12
      (fun () -> Edge_meg.Classic.make ~n:48 ~p:(3. /. 48.) ~q:0.4 ())
  in
  let name what = Printf.sprintf "mean_time seed=%d jobs=%d %s" seed jobs what in
  check_close ~eps:0. (name "mean") mean (Stats.Summary.mean s);
  check_close ~eps:0. (name "stddev") stddev (Stats.Summary.stddev s);
  check_close ~eps:0. (name "max") max (Stats.Summary.max s)

let test_mean_time_seed42 () =
  check_mean_time ~seed:42 ~jobs:1 ~mean:3.5000000000000004 ~stddev:0.52223296786709339 ~max:4.;
  check_mean_time ~seed:42 ~jobs:4 ~mean:3.5000000000000004 ~stddev:0.52223296786709339 ~max:4.

let test_mean_time_seed7 () =
  check_mean_time ~seed:7 ~jobs:1 ~mean:3.3333333333333339 ~stddev:0.4923659639173309 ~max:4.;
  check_mean_time ~seed:7 ~jobs:4 ~mean:3.3333333333333339 ~stddev:0.4923659639173309 ~max:4.

(* Regeneration recipe: `dune exec bin/regen_golden.exe` prints every
   literal above in paste-ready form (its builders mirror this file);
   transcribe and note the regeneration in the changelog. *)

let suites =
  [
    ( "golden.flooding",
      [
        Alcotest.test_case "edge_meg classic" `Quick test_flood_edge_meg_classic;
        Alcotest.test_case "edge_meg opportunistic" `Quick test_flood_opportunistic;
        Alcotest.test_case "node_meg" `Quick test_flood_node_meg;
        Alcotest.test_case "waypoint" `Quick test_flood_waypoint;
        Alcotest.test_case "random_walk" `Quick test_flood_random_walk;
        Alcotest.test_case "rp_model" `Quick test_flood_rp_model;
        Alcotest.test_case "rotating_star" `Quick test_flood_rotating_star;
        Alcotest.test_case "filtered complete" `Quick test_flood_filtered;
        Alcotest.test_case "union star+matching" `Quick test_flood_union;
      ] );
    ( "golden.push",
      [
        Alcotest.test_case "edge_meg classic" `Quick test_push_edge_meg_classic;
        Alcotest.test_case "edge_meg opportunistic" `Quick test_push_opportunistic;
        Alcotest.test_case "node_meg" `Quick test_push_node_meg;
        Alcotest.test_case "waypoint" `Quick test_push_waypoint;
        Alcotest.test_case "random_walk" `Quick test_push_random_walk;
        Alcotest.test_case "rp_model" `Quick test_push_rp_model;
        Alcotest.test_case "filtered complete" `Quick test_push_filtered;
        Alcotest.test_case "union star+matching" `Quick test_push_union;
      ] );
    ( "golden.parsimonious",
      [
        Alcotest.test_case "edge_meg classic" `Quick test_pars_edge_meg_classic;
        Alcotest.test_case "node_meg" `Quick test_pars_node_meg;
        Alcotest.test_case "waypoint" `Quick test_pars_waypoint;
        Alcotest.test_case "random_walk capped" `Quick test_pars_random_walk_capped;
        Alcotest.test_case "rp_model capped" `Quick test_pars_rp_model_capped;
        Alcotest.test_case "rotating_star" `Quick test_pars_rotating_star;
        Alcotest.test_case "filtered complete" `Quick test_pars_filtered;
      ] );
    ( "golden.mean_time",
      [
        Alcotest.test_case "seed 42, jobs 1 and 4" `Quick test_mean_time_seed42;
        Alcotest.test_case "seed 7, jobs 1 and 4" `Quick test_mean_time_seed7;
      ] );
  ]
