(* Intra-run parallelism (DESIGN.md section 11): the tile pool and the
   kernels built on it must be byte-identical to their sequential
   counterparts at every worker count, across the heap/off-heap layout
   boundary and the chunk/partition boundaries. *)

let seeded k = Prng.Rng.of_seed k

(* Run each test body with the tile pool forced to [w] workers (and,
   when given, an explicit tile_min), restoring a quiescent pool
   (workers = 1, env-driven tile_min) afterwards so the golden and
   determinism suites that follow never see a fan-out. *)
let with_pool ?tile_min w body =
  Exec.Pool.set_workers w;
  Exec.Pool.set_tile_min tile_min;
  Fun.protect
    ~finally:(fun () ->
      Exec.Pool.set_workers 1;
      Exec.Pool.set_tile_min None)
    body

let check_result name (a : Core.Flooding.result) (b : Core.Flooding.result) =
  Alcotest.(check (option int)) (name ^ ": time") a.time b.time;
  Alcotest.(check (array int)) (name ^ ": trajectory") a.trajectory b.trajectory;
  Alcotest.(check (array int)) (name ^ ": arrivals") a.arrivals b.arrivals

(* Heap-vs-offheap Flood equality at the storage boundary (2^17 +- 1)
   and at chunk_nodes multiples +- 1, with the pool engaged — the
   parallel tiled scan must reproduce the heap rows' answer exactly. *)
let test_flood_layouts_agree_parallel () =
  let chunk = Graph.Storage.chunk_nodes in
  let sizes =
    [ chunk - 1; chunk; chunk + 1; Graph.Storage.offheap_nodes - 1;
      Graph.Storage.offheap_nodes; Graph.Storage.offheap_nodes + 1 ]
  in
  with_pool 4 (fun () ->
      List.iter
        (fun n ->
          (* The model itself stays off-heap at every size: a heap
             Classic sparse set is O(n^2) words, unpayable near 2^17
             nodes. Only the flood kernel's adjacency layout varies. *)
          let g =
            Edge_meg.Classic.make ~storage:`Offheap ~n ~p:(4. /. float_of_int n) ~q:0.5 ()
          in
          let heap =
            Core.Flooding.run ~cap:64 ~storage:`Heap ~rng:(seeded 42) ~source:0 g
          in
          let off =
            Core.Flooding.run ~cap:64 ~storage:`Offheap ~rng:(seeded 42) ~source:0 g
          in
          check_result (Printf.sprintf "n=%d" n) heap off)
        sizes)

(* The same off-heap run at 1, 2 and 4 workers: identical results, and
   the 1-worker case never engages the pool at all. *)
let test_flood_worker_count_invariance () =
  let n = Graph.Storage.offheap_nodes in
  let g = Edge_meg.Classic.make ~storage:`Offheap ~n ~p:(4. /. float_of_int n) ~q:0.5 () in
  let run () = Core.Flooding.run ~cap:64 ~storage:`Offheap ~rng:(seeded 7) ~source:0 g in
  let r1 = with_pool 1 run in
  let r2 = with_pool 2 run in
  let r4 = with_pool 4 run in
  check_result "jobs 1 vs 2" r1 r2;
  check_result "jobs 1 vs 4" r1 r4

(* Fan-out gating: undersized tile counts stay sequential. Observed
   directly through [fan_out], and behaviourally by counting distinct
   domains that execute tiles. *)
let test_fan_out_gating () =
  with_pool ~tile_min:2 4 (fun () ->
      Alcotest.(check bool) "8 tiles at 4 workers fans out" true (Exec.Pool.fan_out 8);
      Alcotest.(check bool) "7 tiles stays sequential" false (Exec.Pool.fan_out 7);
      Alcotest.(check bool) "0 tiles stays sequential" false (Exec.Pool.fan_out 0);
      let caller = (Domain.self () :> int) in
      let doms = Array.make 7 (-1) in
      Exec.Pool.run_tiles 7 (fun i -> doms.(i) <- (Domain.self () :> int));
      Array.iteri
        (fun i d ->
          Alcotest.(check int) (Printf.sprintf "undersized tile %d on caller" i) caller d)
        doms);
  with_pool ~tile_min:1 1 (fun () ->
      Alcotest.(check bool) "1 worker never fans out" false (Exec.Pool.fan_out 1024))

(* Inside a pool worker (trial-level parallelism), run_tiles degrades to
   the sequential loop instead of nesting fan-outs. *)
let test_run_tiles_nested_sequential () =
  with_pool ~tile_min:1 4 (fun () ->
      let results =
        Exec.map (Exec.pool 2) ~jobs:2 (fun _ ->
            let caller = (Domain.self () :> int) in
            let ok = ref true in
            Exec.Pool.run_tiles 64 (fun _ ->
                if (Domain.self () :> int) <> caller then ok := false);
            !ok)
      in
      Array.iter (Alcotest.(check bool) "nested run_tiles stays on its worker" true) results)

(* A raising tile drains the pool (first exception wins, with its
   backtrace) and leaves it immediately reusable. *)
let test_run_tiles_failure_drains () =
  with_pool ~tile_min:1 4 (fun () ->
      (match Exec.Pool.run_tiles 64 (fun i -> if i = 13 then failwith "tile boom") with
      | () -> Alcotest.fail "expected run_tiles to raise"
      | exception Failure msg -> Alcotest.(check string) "message" "tile boom" msg);
      let hits = Array.make 64 0 in
      Exec.Pool.run_tiles 64 (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "tile %d after failure" i) 1 h)
        hits)

(* Full observable trace of a dynamic model: initial snapshot, then per
   step the delta report and the new snapshot, rendered to a string so
   traces compare (and print on mismatch) wholesale. *)
let trace ?(steps = 5) ~seed g =
  Core.Dynamic.reset g (seeded seed);
  let buf = Buffer.create 4096 in
  let snap tag =
    Buffer.add_string buf tag;
    Core.Dynamic.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf " %d-%d" u v));
    Buffer.add_char buf '\n'
  in
  snap "E0:";
  for t = 1 to steps do
    Core.Dynamic.step g;
    Buffer.add_string buf (Printf.sprintf "d%d:" t);
    let ok =
      Core.Dynamic.deltas g
        ~birth:(fun u v -> Buffer.add_string buf (Printf.sprintf " +%d-%d" u v))
        ~death:(fun u v -> Buffer.add_string buf (Printf.sprintf " -%d-%d" u v))
    in
    Buffer.add_string buf (if ok then "\n" else " declined\n");
    snap (Printf.sprintf "E%d:" t)
  done;
  Buffer.contents buf

(* The partitioned Classic engine's results are a function of the seed
   alone: [parts] only regroups the 64 fixed strips into step tasks, so
   parts = 1 / 2 / 7 / 64 — spanning never-fans-out through
   one-strip-per-task — must yield identical delta streams and
   snapshots. *)
let test_classic_parts_independence () =
  let n = 512 in
  let mk parts = Edge_meg.Classic.make ~parts ~n ~p:(4. /. float_of_int n) ~q:0.3 () in
  with_pool ~tile_min:1 4 (fun () ->
      let ref_trace = trace ~seed:11 (mk 1) in
      List.iter
        (fun parts ->
          Alcotest.(check string)
            (Printf.sprintf "parts=%d" parts)
            ref_trace
            (trace ~seed:11 (mk parts)))
        [ 2; 7; 64 ])

(* Same property for the partitioned General engine (hidden 3-state
   chain, chi = state 0). *)
let test_general_parts_independence () =
  let n = 128 in
  let chain =
    Markov.Chain.of_rows (Array.init 3 (fun s -> [| (s, 0.5); ((s + 1) mod 3, 0.5) |]))
  in
  let chi s = s = 0 in
  let mk parts = Edge_meg.General.make ~parts ~n ~chain ~chi () in
  with_pool ~tile_min:1 4 (fun () ->
      let ref_trace = trace ~seed:13 (mk 1) in
      List.iter
        (fun parts ->
          Alcotest.(check string)
            (Printf.sprintf "parts=%d" parts)
            ref_trace
            (trace ~seed:13 (mk parts)))
        [ 2; 7; 64 ])

(* Worker-count invariance for the partitioned engines: the same
   partitioned model traced under a 1-worker and a 3-worker pool. *)
let test_partitioned_worker_invariance () =
  let n = 512 in
  let classic () = Edge_meg.Classic.make ~parts:8 ~n ~p:(4. /. float_of_int n) ~q:0.3 () in
  let c1 = with_pool ~tile_min:1 1 (fun () -> trace ~seed:19 (classic ())) in
  let c3 = with_pool ~tile_min:1 3 (fun () -> trace ~seed:19 (classic ())) in
  Alcotest.(check string) "classic: 1 vs 3 workers" c1 c3;
  let chain = Markov.Chain.of_rows [| [| (0, 0.7); (1, 0.3) |]; [| (0, 0.4); (1, 0.6) |] |] in
  let general () = Edge_meg.General.make ~parts:8 ~n:96 ~chain ~chi:(fun s -> s = 1) () in
  let g1 = with_pool ~tile_min:1 1 (fun () -> trace ~seed:23 (general ())) in
  let g3 = with_pool ~tile_min:1 3 (fun () -> trace ~seed:23 (general ())) in
  Alcotest.(check string) "general: 1 vs 3 workers" g1 g3

(* DYNGRAPH_TILE_MIN follows the warn-once env contract of
   DYNGRAPH_JOBS: unset or junk fall back to the default, a positive
   integer is honoured, and an explicit override beats the env. *)
let test_tile_min_env () =
  let saved = Sys.getenv_opt "DYNGRAPH_TILE_MIN" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DYNGRAPH_TILE_MIN" (Option.value ~default:"" saved);
      Exec.Pool.set_tile_min None)
  @@ fun () ->
  Unix.putenv "DYNGRAPH_TILE_MIN" "";
  Alcotest.(check int) "empty value ignored" 2 (Exec.Pool.tile_min ());
  Unix.putenv "DYNGRAPH_TILE_MIN" "notanumber";
  Alcotest.(check int) "unparsable value ignored" 2 (Exec.Pool.tile_min ());
  Unix.putenv "DYNGRAPH_TILE_MIN" "0";
  Alcotest.(check int) "non-positive value ignored" 2 (Exec.Pool.tile_min ());
  Unix.putenv "DYNGRAPH_TILE_MIN" " 5 ";
  Alcotest.(check int) "positive value honoured" 5 (Exec.Pool.tile_min ());
  Exec.Pool.set_tile_min (Some 3);
  Alcotest.(check int) "override beats env" 3 (Exec.Pool.tile_min ());
  Alcotest.check_raises "set_tile_min 0 rejected"
    (Invalid_argument "Exec.Pool.set_tile_min: must be >= 1") (fun () ->
      Exec.Pool.set_tile_min (Some 0));
  (* An undersized run under an env-raised tile_min stays sequential. *)
  Exec.Pool.set_tile_min None;
  Unix.putenv "DYNGRAPH_TILE_MIN" "64";
  Exec.Pool.set_workers 4;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_workers 1) @@ fun () ->
  Alcotest.(check bool) "255 tiles under tile_min=64*4" false (Exec.Pool.fan_out 255);
  let caller = (Domain.self () :> int) in
  Exec.Pool.run_tiles 255 (fun _ ->
      Alcotest.(check int) "undersized tile on caller" caller ((Domain.self () :> int)))

let suites =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "fan-out gating" `Quick test_fan_out_gating;
        Alcotest.test_case "nested stays sequential" `Quick test_run_tiles_nested_sequential;
        Alcotest.test_case "failure drains and reraises" `Quick test_run_tiles_failure_drains;
        Alcotest.test_case "DYNGRAPH_TILE_MIN parsing" `Quick test_tile_min_env;
      ] );
    ( "parallel.meg",
      [
        Alcotest.test_case "classic parts-independence" `Quick test_classic_parts_independence;
        Alcotest.test_case "general parts-independence" `Quick test_general_parts_independence;
        Alcotest.test_case "worker-count invariance" `Quick test_partitioned_worker_invariance;
      ] );
    ( "parallel.flood",
      [
        Alcotest.test_case "heap = offheap at boundaries (pool engaged)" `Slow
          test_flood_layouts_agree_parallel;
        Alcotest.test_case "worker-count invariance" `Slow test_flood_worker_count_invariance;
      ] );
  ]
