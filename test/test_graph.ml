open Helpers

(* --- Static --- *)

let test_of_edges_dedup () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (1, 2) ] in
  Alcotest.(check int) "edges deduplicated" 2 (Graph.Static.m g);
  Alcotest.(check int) "degree 1" 2 (Graph.Static.degree g 1)

let test_of_edges_errors () =
  check_true "self-loop rejected"
    (try
       ignore (Graph.Static.of_edges ~n:3 [ (1, 1) ]);
       false
     with Invalid_argument _ -> true);
  check_true "out of range rejected"
    (try
       ignore (Graph.Static.of_edges ~n:3 [ (0, 3) ]);
       false
     with Invalid_argument _ -> true)

let test_neighbors_sorted () =
  let g = Graph.Static.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted neighbours" [| 0; 1; 3; 4 |] (Graph.Static.neighbors g 2)

let test_iter_edges_each_once () =
  let g = Graph.Builders.cycle 5 in
  let count = ref 0 in
  Graph.Static.iter_edges g (fun u v ->
      incr count;
      check_true "u < v" (u < v));
  Alcotest.(check int) "each edge once" 5 !count

let q_handshake =
  qtest ~count:100 "sum of degrees = 2m" (random_graph_gen ()) (fun g ->
      let sum = ref 0 in
      for u = 0 to Graph.Static.n g - 1 do
        sum := !sum + Graph.Static.degree g u
      done;
      !sum = 2 * Graph.Static.m g)

let q_mem_edge_consistent =
  qtest ~count:100 "mem_edge iff in neighbour list" (random_graph_gen ()) (fun g ->
      let ok = ref true in
      for u = 0 to Graph.Static.n g - 1 do
        for v = 0 to Graph.Static.n g - 1 do
          let in_list = Array.exists (( = ) v) (Graph.Static.neighbors g u) in
          if Graph.Static.mem_edge g u v <> in_list then ok := false
        done
      done;
      !ok)

let q_symmetric =
  qtest ~count:100 "built graphs are symmetric" (random_graph_gen ()) Graph.Static.is_symmetric

let test_degree_regularity () =
  check_close "cycle regularity" 1. (Graph.Static.degree_regularity (Graph.Builders.cycle 6));
  let star = Graph.Builders.star 5 in
  check_close "star regularity" 4. (Graph.Static.degree_regularity star);
  let lonely = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  check_true "isolated vertex gives infinity"
    (Graph.Static.degree_regularity lonely = infinity)

(* --- Builders --- *)

let test_grid_structure () =
  let g = Graph.Builders.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "vertices" 12 (Graph.Static.n g);
  Alcotest.(check int) "edges" ((3 * 3) + (2 * 4)) (Graph.Static.m g);
  check_true "corner degree 2" (Graph.Static.degree g 0 = 2);
  check_true "interior degree 4" (Graph.Static.degree g (Graph.Builders.grid_index ~cols:4 1 1) = 4)

let test_grid_coords_roundtrip () =
  let cols = 7 in
  for v = 0 to 34 do
    let r, c = Graph.Builders.grid_coords ~cols v in
    Alcotest.(check int) "roundtrip" v (Graph.Builders.grid_index ~cols r c)
  done

let test_torus_regular () =
  let g = Graph.Builders.torus ~rows:4 ~cols:5 in
  Alcotest.(check int) "edges" (2 * 4 * 5) (Graph.Static.m g);
  for v = 0 to Graph.Static.n g - 1 do
    Alcotest.(check int) "degree 4" 4 (Graph.Static.degree g v)
  done

let test_augmented_k1_is_grid () =
  let a = Graph.Builders.augmented_grid ~rows:4 ~cols:5 ~k:1 in
  let g = Graph.Builders.grid ~rows:4 ~cols:5 in
  Alcotest.(check (list (pair int int))) "same edges" (Graph.Static.edges g) (Graph.Static.edges a)

let test_augmented_matches_bruteforce () =
  let rows = 4 and cols = 4 and k = 2 in
  let a = Graph.Builders.augmented_grid ~rows ~cols ~k in
  let manhattan u v =
    let r1, c1 = Graph.Builders.grid_coords ~cols u in
    let r2, c2 = Graph.Builders.grid_coords ~cols v in
    abs (r1 - r2) + abs (c1 - c2)
  in
  let expected = ref [] in
  for u = 0 to (rows * cols) - 1 do
    for v = u + 1 to (rows * cols) - 1 do
      if manhattan u v <= k then expected := (u, v) :: !expected
    done
  done;
  Alcotest.(check (list (pair int int)))
    "augmented = brute force"
    (List.sort compare !expected)
    (Graph.Static.edges a)

let test_small_families () =
  Alcotest.(check int) "cycle m" 6 (Graph.Static.m (Graph.Builders.cycle 6));
  Alcotest.(check int) "path m" 5 (Graph.Static.m (Graph.Builders.path_graph 6));
  Alcotest.(check int) "complete m" 15 (Graph.Static.m (Graph.Builders.complete 6));
  Alcotest.(check int) "star m" 5 (Graph.Static.m (Graph.Builders.star 6))

let test_hypercube () =
  let g = Graph.Builders.hypercube 4 in
  Alcotest.(check int) "vertices" 16 (Graph.Static.n g);
  Alcotest.(check int) "edges d*2^(d-1)" 32 (Graph.Static.m g);
  for v = 0 to 15 do
    Alcotest.(check int) "d-regular" 4 (Graph.Static.degree g v)
  done;
  Alcotest.(check int) "diameter = d" 4 (Graph.Traverse.diameter g);
  check_close "regularity 1" 1. (Graph.Static.degree_regularity g)

let test_complete_bipartite () =
  let g = Graph.Builders.complete_bipartite 3 4 in
  Alcotest.(check int) "vertices" 7 (Graph.Static.n g);
  Alcotest.(check int) "edges" 12 (Graph.Static.m g);
  Alcotest.(check int) "left degree" 4 (Graph.Static.degree g 0);
  Alcotest.(check int) "right degree" 3 (Graph.Static.degree g 5);
  check_true "no intra-side edges" (not (Graph.Static.mem_edge g 0 1))

let test_binary_tree () =
  let g = Graph.Builders.binary_tree 7 in
  Alcotest.(check int) "edges = n-1" 6 (Graph.Static.m g);
  check_true "connected" (Graph.Traverse.is_connected g);
  Alcotest.(check int) "root degree" 2 (Graph.Static.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.Static.degree g 6);
  Alcotest.(check int) "diameter" 4 (Graph.Traverse.diameter g)

let test_random_regular () =
  let rng = rng_of_seed 3 in
  let g = Graph.Builders.random_regular ~rng ~n:20 ~d:4 in
  Alcotest.(check int) "edges nd/2" 40 (Graph.Static.m g);
  for v = 0 to 19 do
    Alcotest.(check int) "exactly d-regular" 4 (Graph.Static.degree g v)
  done

let test_random_regular_validation () =
  let rng = rng_of_seed 4 in
  check_true "odd nd rejected"
    (try
       ignore (Graph.Builders.random_regular ~rng ~n:5 ~d:3);
       false
     with Invalid_argument _ -> true);
  check_true "d >= n rejected"
    (try
       ignore (Graph.Builders.random_regular ~rng ~n:4 ~d:4);
       false
     with Invalid_argument _ -> true)

let q_random_regular_simple =
  qtest ~count:30 "random regular graphs are simple and regular"
    QCheck2.Gen.(pair seed_gen (int_range 4 20))
    (fun (seed, half_n) ->
      let n = 2 * half_n in
      let g = Graph.Builders.random_regular ~rng:(Prng.Rng.of_seed seed) ~n ~d:3 in
      Graph.Static.m g = 3 * n / 2
      &&
      let ok = ref true in
      for v = 0 to n - 1 do
        if Graph.Static.degree g v <> 3 then ok := false
      done;
      !ok && Graph.Static.is_symmetric g)

let test_erdos_renyi_extremes () =
  let rng = rng_of_seed 1 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.Static.m (Graph.Builders.erdos_renyi ~rng ~n:20 ~p:0.));
  Alcotest.(check int) "p=1 complete" 190
    (Graph.Static.m (Graph.Builders.erdos_renyi ~rng ~n:20 ~p:1.))

let test_erdos_renyi_density () =
  let rng = rng_of_seed 2 in
  let n = 100 and p = 0.3 in
  let s = Stats.Summary.create () in
  for _ = 1 to 30 do
    Stats.Summary.add s (float_of_int (Graph.Static.m (Graph.Builders.erdos_renyi ~rng ~n ~p)))
  done;
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  check_close_rel ~rel:0.05 "G(n,p) edge count" expected (Stats.Summary.mean s)

let q_random_geometric_bruteforce =
  qtest ~count:50 "random geometric = brute force"
    QCheck2.Gen.(pair seed_gen (int_range 2 25))
    (fun (seed, n) ->
      (* Rebuild the same points by re-seeding, then compare edge sets
         against an O(n^2) check. *)
      let radius = 0.3 in
      let g = Graph.Builders.random_geometric ~rng:(Prng.Rng.of_seed seed) ~n ~radius in
      let rng = Prng.Rng.of_seed seed in
      let xs = Array.init n (fun _ -> Prng.Rng.unit_float rng) in
      let ys = Array.init n (fun _ -> Prng.Rng.unit_float rng) in
      let expected = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
          if (dx *. dx) +. (dy *. dy) <= radius *. radius then expected := (i, j) :: !expected
        done
      done;
      List.sort compare !expected = Graph.Static.edges g)

(* --- Edge_buffer --- *)

let test_buffer_push_clear () =
  let b = Graph.Edge_buffer.create ~capacity:2 () in
  Alcotest.(check int) "empty" 0 (Graph.Edge_buffer.length b);
  for i = 0 to 9 do
    Graph.Edge_buffer.push b i (i + 1)
  done;
  Alcotest.(check int) "ten edges" 10 (Graph.Edge_buffer.length b);
  check_true "grew" (Graph.Edge_buffer.capacity b >= 10);
  Alcotest.(check int) "src 3" 3 (Graph.Edge_buffer.src b 3);
  Alcotest.(check int) "dst 3" 4 (Graph.Edge_buffer.dst b 3);
  let cap = Graph.Edge_buffer.capacity b in
  Graph.Edge_buffer.clear b;
  Alcotest.(check int) "cleared" 0 (Graph.Edge_buffer.length b);
  Alcotest.(check int) "storage kept" cap (Graph.Edge_buffer.capacity b);
  Graph.Edge_buffer.push b 7 8;
  Alcotest.(check (list (pair int int))) "reusable" [ (7, 8) ] (Graph.Edge_buffer.to_list b)

let test_buffer_iter_order () =
  let b = Graph.Edge_buffer.create () in
  List.iter (fun (u, v) -> Graph.Edge_buffer.push b u v) [ (3, 1); (0, 2); (3, 1) ];
  let seen = ref [] in
  Graph.Edge_buffer.iter b (fun u v -> seen := (u, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "buffer order, orientation kept" [ (3, 1); (0, 2); (3, 1) ] (List.rev !seen)

let test_buffer_append_reverse () =
  let a = Graph.Edge_buffer.create ~capacity:1 () in
  let b = Graph.Edge_buffer.create () in
  List.iter (fun (u, v) -> Graph.Edge_buffer.push a u v) [ (0, 1); (2, 3) ];
  Graph.Edge_buffer.push b 9 8;
  Graph.Edge_buffer.append a ~into:b;
  Alcotest.(check (list (pair int int)))
    "appended after existing" [ (9, 8); (0, 1); (2, 3) ] (Graph.Edge_buffer.to_list b);
  Alcotest.(check (list (pair int int)))
    "source unchanged" [ (0, 1); (2, 3) ] (Graph.Edge_buffer.to_list a);
  check_true "self-append rejected"
    (try
       Graph.Edge_buffer.append a ~into:a;
       false
     with Invalid_argument _ -> true);
  Graph.Edge_buffer.reverse_in_place b;
  Alcotest.(check (list (pair int int)))
    "reversed, orientation kept" [ (2, 3); (0, 1); (9, 8) ] (Graph.Edge_buffer.to_list b)

(* sort_dedup against the obvious list-based reference. *)
let q_buffer_sort_dedup =
  qtest ~count:200 "sort_dedup = sort_uniq of normalised pairs"
    QCheck2.Gen.(pair seed_gen (int_range 0 200))
    (fun (seed, len) ->
      let rng = Prng.Rng.of_seed seed in
      let b = Graph.Edge_buffer.create () in
      let edges = ref [] in
      for _ = 1 to len do
        let u = Prng.Rng.int rng 12 and v = Prng.Rng.int rng 12 in
        Graph.Edge_buffer.push b u v;
        edges := (min u v, max u v) :: !edges
      done;
      Graph.Edge_buffer.sort_dedup b;
      Graph.Edge_buffer.to_list b = List.sort_uniq compare !edges)

(* of_buffer and of_edge_array build the same CSR as the list path. *)
let q_of_buffer_consistent =
  qtest ~count:100 "of_buffer = of_edges" (random_graph_gen ()) (fun g ->
      let n = Graph.Static.n g in
      let edges = Graph.Static.edges g in
      let b = Graph.Edge_buffer.create () in
      (* Push each edge twice in mixed orientation: of_buffer dedups. *)
      List.iter
        (fun (u, v) ->
          Graph.Edge_buffer.push b v u;
          Graph.Edge_buffer.push b u v)
        edges;
      let g' = Graph.Static.of_buffer ~n b in
      let g'' = Graph.Static.of_edge_array ~n (Array.of_list edges) in
      Graph.Static.edges g' = edges
      && Graph.Static.edges g'' = edges
      &&
      let same = ref true in
      for u = 0 to n - 1 do
        if Graph.Static.neighbors g' u <> Graph.Static.neighbors g u then same := false
      done;
      !same)

let test_of_buffer_errors () =
  let b = Graph.Edge_buffer.create () in
  Graph.Edge_buffer.push b 1 1;
  check_true "self-loop rejected"
    (try
       ignore (Graph.Static.of_buffer ~n:3 b);
       false
     with Invalid_argument _ -> true);
  Graph.Edge_buffer.clear b;
  Graph.Edge_buffer.push b 0 3;
  check_true "out of range rejected"
    (try
       ignore (Graph.Static.of_buffer ~n:3 b);
       false
     with Invalid_argument _ -> true)

let test_to_buffer_roundtrip () =
  let g = Graph.Builders.augmented_grid ~rows:3 ~cols:4 ~k:2 in
  let b = Graph.Edge_buffer.create () in
  Graph.Static.to_buffer g b;
  let g' = Graph.Static.of_buffer ~n:(Graph.Static.n g) b in
  Alcotest.(check (list (pair int int)))
    "roundtrip" (Graph.Static.edges g) (Graph.Static.edges g')

(* --- Pairs --- *)

let q_pairs_roundtrip =
  qtest ~count:200 "encode/decode roundtrip" (QCheck2.Gen.int_range 2 60) (fun n ->
      let ok = ref true in
      for idx = 0 to Graph.Pairs.total n - 1 do
        let u, v = Graph.Pairs.decode n idx in
        if u >= v || Graph.Pairs.encode n u v <> idx then ok := false
      done;
      !ok)

let test_pairs_encode_symmetric () =
  Alcotest.(check int) "order-insensitive" (Graph.Pairs.encode 10 7 3) (Graph.Pairs.encode 10 3 7)

let test_pairs_total () =
  Alcotest.(check int) "total 5" 10 (Graph.Pairs.total 5);
  Alcotest.(check int) "total 2" 1 (Graph.Pairs.total 2)

(* --- Traverse --- *)

let test_bfs_path () =
  let g = Graph.Builders.path_graph 6 in
  let d = Graph.Traverse.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_bfs_unreachable () =
  let g = Graph.Static.of_edges ~n:4 [ (0, 1) ] in
  let d = Graph.Traverse.bfs_distances g 0 in
  Alcotest.(check int) "unreachable -1" (-1) d.(2)

let test_components () =
  let g = Graph.Static.of_edges ~n:7 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "components" 4 (Graph.Traverse.n_components g);
  Alcotest.(check int) "largest" 3 (Graph.Traverse.largest_component_size g);
  Alcotest.(check int) "isolated" 2 (Graph.Traverse.n_isolated g);
  check_true "not connected" (not (Graph.Traverse.is_connected g))

let test_diameter_grid () =
  let g = Graph.Builders.grid ~rows:3 ~cols:5 in
  Alcotest.(check int) "grid diameter" 6 (Graph.Traverse.diameter g)

let test_diameter_cycle () =
  Alcotest.(check int) "even cycle" 4 (Graph.Traverse.diameter (Graph.Builders.cycle 8));
  Alcotest.(check int) "odd cycle" 3 (Graph.Traverse.diameter (Graph.Builders.cycle 7))

let q_two_sweep_le_diameter =
  qtest ~count:100 "two-sweep lower bound <= diameter" (random_graph_gen ~max_n:20 ())
    (fun g ->
      not (Graph.Traverse.is_connected g)
      || Graph.Traverse.diameter_lower_bound g <= Graph.Traverse.diameter g)

let test_two_sweep_tight_on_grid () =
  let g = Graph.Builders.grid ~rows:5 ~cols:5 in
  Alcotest.(check int) "tight on grid" (Graph.Traverse.diameter g)
    (Graph.Traverse.diameter_lower_bound g)

let test_eccentricity_disconnected () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  check_true "disconnected eccentricity raises"
    (try
       ignore (Graph.Traverse.eccentricity g 0);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "graph.static",
      [
        Alcotest.test_case "dedup" `Quick test_of_edges_dedup;
        Alcotest.test_case "construction errors" `Quick test_of_edges_errors;
        Alcotest.test_case "neighbours sorted" `Quick test_neighbors_sorted;
        Alcotest.test_case "iter_edges once" `Quick test_iter_edges_each_once;
        Alcotest.test_case "degree regularity" `Quick test_degree_regularity;
        q_handshake;
        q_mem_edge_consistent;
        q_symmetric;
      ] );
    ( "graph.builders",
      [
        Alcotest.test_case "grid structure" `Quick test_grid_structure;
        Alcotest.test_case "grid coords roundtrip" `Quick test_grid_coords_roundtrip;
        Alcotest.test_case "torus regular" `Quick test_torus_regular;
        Alcotest.test_case "augmented k=1 = grid" `Quick test_augmented_k1_is_grid;
        Alcotest.test_case "augmented brute force" `Quick test_augmented_matches_bruteforce;
        Alcotest.test_case "small families" `Quick test_small_families;
        Alcotest.test_case "hypercube" `Quick test_hypercube;
        Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
        Alcotest.test_case "binary tree" `Quick test_binary_tree;
        Alcotest.test_case "random regular" `Quick test_random_regular;
        Alcotest.test_case "random regular validation" `Quick test_random_regular_validation;
        Alcotest.test_case "G(n,p) extremes" `Quick test_erdos_renyi_extremes;
        q_random_regular_simple;
        Alcotest.test_case "G(n,p) density" `Quick test_erdos_renyi_density;
        q_random_geometric_bruteforce;
      ] );
    ( "graph.edge_buffer",
      [
        Alcotest.test_case "push/clear/reuse" `Quick test_buffer_push_clear;
        Alcotest.test_case "iter order" `Quick test_buffer_iter_order;
        Alcotest.test_case "append and reverse" `Quick test_buffer_append_reverse;
        q_buffer_sort_dedup;
        q_of_buffer_consistent;
        Alcotest.test_case "of_buffer errors" `Quick test_of_buffer_errors;
        Alcotest.test_case "to_buffer roundtrip" `Quick test_to_buffer_roundtrip;
      ] );
    ( "graph.pairs",
      [
        Alcotest.test_case "encode symmetric" `Quick test_pairs_encode_symmetric;
        Alcotest.test_case "totals" `Quick test_pairs_total;
        q_pairs_roundtrip;
      ] );
    ( "graph.traverse",
      [
        Alcotest.test_case "bfs on path" `Quick test_bfs_path;
        Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "diameter grid" `Quick test_diameter_grid;
        Alcotest.test_case "diameter cycle" `Quick test_diameter_cycle;
        Alcotest.test_case "two-sweep tight on grid" `Quick test_two_sweep_tight_on_grid;
        Alcotest.test_case "eccentricity disconnected" `Quick test_eccentricity_disconnected;
        q_two_sweep_le_diameter;
      ] );
  ]
