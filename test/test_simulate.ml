open Helpers

let test_registry_ids () =
  let ids = List.map (fun (e : Simulate.Registry.experiment) -> e.id) Simulate.Registry.all in
  Alcotest.(check int) "eighteen experiments" 18 (List.length ids);
  Alcotest.(check (list string)) "ordered ids"
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13";
      "E14"; "E15"; "E16"; "E17"; "E18";
    ]
    ids;
  check_true "ids unique" (List.length (List.sort_uniq compare ids) = 18)

let test_registry_find () =
  (match Simulate.Registry.find "e4" with
  | Some e -> Alcotest.(check string) "case-insensitive find" "E4" e.id
  | None -> Alcotest.fail "E4 not found");
  check_true "unknown id" (Simulate.Registry.find "E99" = None)

let test_registry_metadata () =
  List.iter
    (fun (e : Simulate.Registry.experiment) ->
      check_true (e.id ^ " has a title") (String.length e.title > 10);
      check_true (e.id ^ " has a claim") (String.length e.claim > 20))
    Simulate.Registry.all

let test_runner_pick_trials () =
  Alcotest.(check int) "quick trials" 5 (Simulate.Runner.trials Simulate.Runner.Quick);
  Alcotest.(check int) "full trials" 20 (Simulate.Runner.trials Simulate.Runner.Full);
  Alcotest.(check int) "pick quick" 1 (Simulate.Runner.pick Simulate.Runner.Quick 1 2);
  Alcotest.(check int) "pick full" 2 (Simulate.Runner.pick Simulate.Runner.Full 1 2)

let test_runner_flood_complete_graph () =
  let dyn () = Core.Dynamic.of_static (Graph.Builders.complete 12) in
  let s = Simulate.Runner.flood ~rng:(rng_of_seed 1) ~trials:4 dyn in
  check_close "one step always" 1. s.mean;
  check_close "no spread" 0. s.stddev;
  check_true "not capped" (not s.capped)

let test_runner_flood_capped () =
  let dyn () = Core.Dynamic.of_static (Graph.Static.of_edges ~n:3 [ (0, 1) ]) in
  let s = Simulate.Runner.flood ~rng:(rng_of_seed 2) ~trials:2 ~cap:25 dyn in
  check_true "capped flag set" s.capped;
  check_close "mean is the cap" 25. s.mean

let test_ratio_cell () =
  (match Simulate.Runner.ratio_cell 5. 10. with
  | Stats.Table.Fixed (v, 3) -> check_close ~eps:1e-12 "ratio" 0.5 v
  | _ -> Alcotest.fail "expected fixed cell");
  check_true "zero bound gives missing" (Simulate.Runner.ratio_cell 5. 0. = Stats.Table.Missing);
  check_true "nan bound gives missing" (Simulate.Runner.ratio_cell 5. nan = Stats.Table.Missing)

(* Run the two cheapest experiments end-to-end at Quick scale: checks
   table structure and that bounds hold with the fixed seed. *)
let test_e1_end_to_end () =
  let tables =
    (List.find (fun (e : Simulate.Registry.experiment) -> e.id = "E1") Simulate.Registry.all).run
      ~sched:Exec.sequential ~rng:(rng_of_seed 42) ~scale:Simulate.Runner.Quick
  in
  Alcotest.(check int) "three tables" 3 (List.length tables);
  let main = List.hd tables in
  check_true "rows present" (Stats.Table.n_rows main > 0);
  let ratios = Stats.Table.column_floats main "ratio" in
  Array.iter (fun r -> check_true "Eq.2 ratio bounded" (r > 0.05 && r < 10.)) ratios

let test_e5_end_to_end () =
  let tables =
    (List.find (fun (e : Simulate.Registry.experiment) -> e.id = "E5") Simulate.Registry.all).run
      ~sched:Exec.sequential ~rng:(rng_of_seed 42) ~scale:Simulate.Runner.Quick
  in
  let t = List.hd tables in
  Alcotest.(check int) "four rows" 4 (Stats.Table.n_rows t);
  let deltas = Stats.Table.column_floats t "delta" in
  Array.iter (fun d -> check_true "delta in a sane band" (d >= 1. && d < 5.)) deltas

let test_run_one_prints () =
  let e = List.find (fun (e : Simulate.Registry.experiment) -> e.id = "E1") Simulate.Registry.all in
  let tmp = Filename.temp_file "dyngraph" ".txt" in
  let oc = open_out tmp in
  let passed =
    Simulate.Registry.run_one ~out:oc ~rng:(rng_of_seed 7) ~scale:Simulate.Runner.Quick e
  in
  close_out oc;
  check_true "E1 checks pass" passed;
  let ic = open_in tmp in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove tmp;
  check_true "wrote output" (len > 200)

let test_slug () =
  Alcotest.(check string) "basic" "hello-world" (Simulate.Export.slug "Hello, World!");
  Alcotest.(check string) "collapses runs" "a-b-c" (Simulate.Export.slug "a  b--c");
  Alcotest.(check string) "trims" "x" (Simulate.Export.slug "  x  ");
  check_true "caps length" (String.length (Simulate.Export.slug (String.make 100 'a')) <= 48)

let test_export_experiment () =
  let dir = Filename.temp_file "dyngraph" "" in
  Sys.remove dir;
  let e = List.find (fun (e : Simulate.Registry.experiment) -> e.id = "E1") Simulate.Registry.all in
  let paths =
    Simulate.Export.export_experiment ~dir ~rng:(rng_of_seed 5)
      ~scale:Simulate.Runner.Quick e
  in
  Alcotest.(check int) "three csv files for E1" 3 (List.length paths);
  List.iter
    (fun p ->
      check_true (p ^ " exists") (Sys.file_exists p);
      let ic = open_in p in
      let header = input_line ic in
      close_in ic;
      check_true "has a csv header" (String.contains header ','))
    paths;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let suites =
  [
    ( "simulate.registry",
      [
        Alcotest.test_case "ids" `Quick test_registry_ids;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "metadata" `Quick test_registry_metadata;
      ] );
    ( "simulate.runner",
      [
        Alcotest.test_case "pick/trials" `Quick test_runner_pick_trials;
        Alcotest.test_case "flood complete graph" `Quick test_runner_flood_complete_graph;
        Alcotest.test_case "flood capped" `Quick test_runner_flood_capped;
        Alcotest.test_case "ratio cell" `Quick test_ratio_cell;
      ] );
    ( "simulate.experiments",
      [
        Alcotest.test_case "slug" `Quick test_slug;
        Alcotest.test_case "export experiment" `Slow test_export_experiment;
        Alcotest.test_case "E1 end to end" `Slow test_e1_end_to_end;
        Alcotest.test_case "E5 end to end" `Slow test_e5_end_to_end;
        Alcotest.test_case "run_one prints" `Slow test_run_one_prints;
      ] );
  ]
