(* Aggregated test entry point: each test module contributes named
   suites and has no top-level effects of its own. *)

let () =
  Alcotest.run "dyngraph"
    (List.concat
       [
         Test_prng.suites;
         Test_exec.suites;
         Test_parallel.suites;
         Test_fleet.suites;
         Test_obs.suites;
         Test_stats.suites;
         Test_graph.suites;
         Test_storage.suites;
         Test_sparse_set.suites;
         Test_markov.suites;
         Test_core.suites;
         Test_fill_edges.suites;
         Test_deltas.suites;
         Test_golden.suites;
         Test_edge_meg.suites;
         Test_node_meg.suites;
         Test_theory.suites;
         Test_mobility.suites;
         Test_random_path.suites;
         Test_gossip.suites;
         Test_dyn_walk.suites;
         Test_adversarial.suites;
         Test_integration.suites;
         Test_simulate.suites;
         Test_trial_plan.suites;
         Test_serve.suites;
       ])
