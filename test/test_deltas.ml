open Helpers

(* The delta contract, end to end: a {!Graph.Mutable_adj} kept in sync
   through {!Core.Adj_sync} — applying each step's birth/death report
   when the model emits one, rebuilding when it declines — must hold
   exactly the edge multiset a fresh [fill_edges] enumeration of the
   same snapshot produces, for every registered model and combinator,
   after any number of steps. Models without the hook degenerate to
   rebuild-correctness, which is the fallback the kernels rely on. *)

let canonical_of_adj adj =
  let acc = ref [] in
  Graph.Mutable_adj.iter_edges adj (fun u v -> acc := (u, v) :: !acc);
  List.sort compare !acc

let canonical_of_fill g =
  let buf = Graph.Edge_buffer.create () in
  Core.Dynamic.fill_edges g buf;
  let acc = ref [] in
  Graph.Edge_buffer.iter buf (fun u v -> acc := (min u v, max u v) :: !acc);
  List.sort compare !acc

(* Builders beyond Test_fill_edges's list, exercising the delta paths
   that list misses: delta-forwarding union (both operands capable),
   filter-over-union (multiset cache diffs), and a sticky node-MEG
   whose per-step change set stays under the decline budget, so its
   hook actually emits (the fill_edges list's fast-churn chain always
   declines). *)
let sticky_chain =
  Markov.Chain.of_rows
    (Array.init 6 (fun s -> [| (s, 0.9); ((s + 1) mod 6, 0.1) |]))

let extra_builders : (string * (unit -> Core.Dynamic.t)) list =
  [
    ( "union.two_classics",
      fun () ->
        Core.Dynamic.union
          (Edge_meg.Classic.make ~n:12 ~p:0.12 ~q:0.4 ())
          (Edge_meg.Classic.make ~n:12 ~p:0.2 ~q:0.6 ()) );
    ( "filter.union",
      fun () ->
        Core.Dynamic.filter_edges ~p_keep:0.5
          (Core.Dynamic.union
             (Edge_meg.Classic.make ~n:10 ~p:0.2 ~q:0.5 ())
             (Edge_meg.Classic.make ~n:10 ~p:0.15 ~q:0.3 ())) );
    ( "node_meg.sticky",
      fun () ->
        Node_meg.Model.make ~n:16 ~chain:sticky_chain
          ~connect:(fun x y ->
            let d = abs (x - y) in
            min d (6 - d) <= 1)
          () );
    ( "subsample.general",
      fun () ->
        let chain =
          Markov.Chain.of_rows (Array.init 3 (fun s -> [| (s, 0.5); ((s + 1) mod 3, 0.5) |]))
        in
        Core.Dynamic.subsample ~every:2 (Edge_meg.General.make ~n:12 ~chain ~chi:(fun s -> s = 1) ())
    );
  ]

let all_builders = Test_fill_edges.builders @ extra_builders

let test_delta_matches_snapshot (name, build) () =
  List.iter
    (fun seed ->
      List.iter
        (fun k ->
          let g = build () in
          Core.Dynamic.reset g (rng_of_seed seed);
          let sync = Core.Adj_sync.create g in
          Core.Adj_sync.ensure sync;
          for _ = 1 to k do
            Core.Dynamic.step g;
            Core.Adj_sync.advance sync;
            Core.Adj_sync.ensure sync
          done;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s seed=%d k=%d" name seed k)
            (canonical_of_fill g)
            (canonical_of_adj (Core.Adj_sync.adj sync)))
        [ 1; 10; 100 ])
    [ 42; 7 ]

(* The incremental path must actually carry delta-capable models: a
   constant process reports empty deltas forever, so the one initial
   build must be the only refresh no matter how many steps pass. *)
let test_static_never_rebuilds () =
  let g = Core.Dynamic.of_static (Graph.Builders.cycle 9) in
  Core.Dynamic.reset g (rng_of_seed 1);
  let sync = Core.Adj_sync.create g in
  for _ = 1 to 50 do
    Core.Adj_sync.ensure sync;
    Core.Dynamic.step g;
    Core.Adj_sync.advance sync
  done;
  Alcotest.(check int) "one refresh" 1 (Core.Adj_sync.refreshes sync);
  Alcotest.(check int) "no delta ops" 0 (Core.Adj_sync.delta_ops sync)

let test_classic_stays_incremental () =
  (* Low churn on purpose: per-step delta well under Adj_sync's
     apply-vs-rebuild crossover (~(2m + n)/5), so every advance takes
     the incremental path. High-churn regimes are *supposed* to
     rebuild — that choice is the heuristic's job, not a regression. *)
  let g = Edge_meg.Classic.make ~n:20 ~p:0.05 ~q:0.05 () in
  Core.Dynamic.reset g (rng_of_seed 5);
  let sync = Core.Adj_sync.create g in
  for _ = 1 to 30 do
    Core.Adj_sync.ensure sync;
    Core.Dynamic.step g;
    Core.Adj_sync.advance sync
  done;
  Alcotest.(check int) "one refresh over 30 steps" 1 (Core.Adj_sync.refreshes sync);
  check_true "deltas were applied" (Core.Adj_sync.delta_ops sync > 0)

(* A model without the hook must decline every step and never pretend
   otherwise. *)
let test_non_capable_declines () =
  let g = Mobility.Random_walk_model.dynamic ~n:10 ~m:4 ~r:1.2 () in
  check_true "no delta capability" (not (Core.Dynamic.has_deltas g));
  Core.Dynamic.reset g (rng_of_seed 2);
  Core.Dynamic.step g;
  check_true "deltas returns false"
    (not (Core.Dynamic.deltas g ~birth:(fun _ _ -> ()) ~death:(fun _ _ -> ())))

(* --- Mutable_adj unit behaviour --- *)

let test_adj_basics () =
  let a = Graph.Mutable_adj.create ~n:5 () in
  Alcotest.(check int) "empty degree" 0 (Graph.Mutable_adj.degree a 3);
  Graph.Mutable_adj.add a 0 1;
  Graph.Mutable_adj.add a 1 2;
  Graph.Mutable_adj.add a 4 1;
  Alcotest.(check int) "deg 1" 3 (Graph.Mutable_adj.degree a 1);
  Alcotest.(check int) "deg 0" 1 (Graph.Mutable_adj.degree a 0);
  Alcotest.(check int) "entries" 6 (Graph.Mutable_adj.entries a);
  Alcotest.(check int) "edge_count" 3 (Graph.Mutable_adj.edge_count a);
  Graph.Mutable_adj.remove a 2 1;
  Alcotest.(check int) "deg 1 after remove" 2 (Graph.Mutable_adj.degree a 1);
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (1, 4) ]
    (let acc = ref [] in
     Graph.Mutable_adj.iter_edges a (fun u v -> acc := (u, v) :: !acc);
     List.sort compare !acc)

let test_adj_multiset () =
  let a = Graph.Mutable_adj.create ~n:3 () in
  Graph.Mutable_adj.add a 0 1;
  Graph.Mutable_adj.add a 0 1;
  Alcotest.(check int) "two copies" 2 (Graph.Mutable_adj.degree a 0);
  Graph.Mutable_adj.remove a 0 1;
  Alcotest.(check int) "one copy left" 1 (Graph.Mutable_adj.degree a 0);
  Graph.Mutable_adj.remove a 0 1;
  Alcotest.(check int) "none left" 0 (Graph.Mutable_adj.degree a 0)

let test_adj_errors () =
  let a = Graph.Mutable_adj.create ~n:4 () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_true "self-loop add raises" (raises (fun () -> Graph.Mutable_adj.add a 2 2));
  check_true "out-of-range add raises" (raises (fun () -> Graph.Mutable_adj.add a 0 4));
  check_true "absent remove raises" (raises (fun () -> Graph.Mutable_adj.remove a 0 1));
  Graph.Mutable_adj.add a 0 1;
  Graph.Mutable_adj.clear a;
  Alcotest.(check int) "clear empties" 0 (Graph.Mutable_adj.entries a);
  check_true "remove after clear raises" (raises (fun () -> Graph.Mutable_adj.remove a 0 1))

(* The arena (off-heap) layout must agree with the heap layout on
   every observable after any add/remove/clear sequence — including
   row ORDER, because neighbour picks index rows positionally and the
   gossip/push coin streams depend on it. *)
let q_adj_arena_matches_heap =
  qtest ~count:150 "arena layout mirrors heap layout exactly"
    QCheck2.Gen.(pair seed_gen (int_range 2 24))
    (fun (seed, n) ->
      let rng = Prng.Rng.of_seed seed in
      let h = Graph.Mutable_adj.create ~n () in
      let a = Graph.Mutable_adj.create ~n ~storage:`Offheap () in
      let present = ref [] in
      let ok = ref true in
      for _ = 1 to 300 do
        let u = Prng.Rng.int rng n and v = Prng.Rng.int rng n in
        if u <> v then begin
          match Prng.Rng.int rng 10 with
          | 0 ->
              Graph.Mutable_adj.clear h;
              Graph.Mutable_adj.clear a;
              present := []
          | k when k < 7 ->
              Graph.Mutable_adj.add h u v;
              Graph.Mutable_adj.add a u v;
              present := (u, v) :: !present
          | _ -> (
              match !present with
              | [] -> ()
              | (u, v) :: rest ->
                  Graph.Mutable_adj.remove h u v;
                  Graph.Mutable_adj.remove a u v;
                  present := rest)
        end;
        ok :=
          !ok
          && Graph.Mutable_adj.entries h = Graph.Mutable_adj.entries a
          && Graph.Mutable_adj.degree h u = Graph.Mutable_adj.degree a u
      done;
      let rows adj =
        List.init n (fun u ->
            List.init (Graph.Mutable_adj.degree adj u) (Graph.Mutable_adj.unsafe_nth adj u))
      in
      check_true "arena reports offheap" (Graph.Mutable_adj.offheap a);
      check_true "heap reports heap" (not (Graph.Mutable_adj.offheap h));
      !ok && rows h = rows a)

let suites =
  [
    ( "core.deltas",
      List.map
        (fun (name, build) ->
          Alcotest.test_case
            (name ^ " delta-sync = snapshot")
            `Quick
            (test_delta_matches_snapshot (name, build)))
        all_builders
      @ [
          Alcotest.test_case "static never rebuilds" `Quick test_static_never_rebuilds;
          Alcotest.test_case "classic stays incremental" `Quick test_classic_stays_incremental;
          Alcotest.test_case "non-capable declines" `Quick test_non_capable_declines;
        ] );
    ( "graph.mutable_adj",
      [
        Alcotest.test_case "basics" `Quick test_adj_basics;
        Alcotest.test_case "multiset copies" `Quick test_adj_multiset;
        Alcotest.test_case "errors and clear" `Quick test_adj_errors;
        q_adj_arena_matches_heap;
      ] );
  ]
