open Helpers

(* The serve stack, bottom-up: the strict JSON codec, the NDJSON
   protocol, and an in-process end-to-end pass through a real server on
   a Unix socket. The codec tests are the satellite the ISSUE asks for:
   the peer is a socket, so truncated and malformed lines must be
   rejected, never crash or silently default. *)

(* --- Jsonx: strict parse / compact render --- *)

let roundtrip v = Serve.Jsonx.parse (Serve.Jsonx.to_string v)

let test_jsonx_roundtrip () =
  let values =
    [
      Serve.Jsonx.Null;
      Bool true;
      Bool false;
      Num 0.;
      Num 42.;
      Num (-17.5);
      Num 1e300;
      Str "";
      Str "plain";
      Str "quotes \" and \\ backslash";
      Str "newline\nand\ttab and \r return";
      Str "control \001 char";
      Arr [];
      Arr [ Num 1.; Str "two"; Bool false; Null ];
      Obj [];
      Obj [ ("a", Num 1.); ("nested", Obj [ ("b", Arr [ Str "x" ]) ]) ];
    ]
  in
  List.iter
    (fun v ->
      match roundtrip v with
      | Ok v' -> check_true "round-trips" (v = v')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    values

let test_jsonx_single_line () =
  let v =
    Serve.Jsonx.Obj
      [ ("output", Str "line one\nline two\nline three"); ("s", Str "\r\n") ]
  in
  let s = Serve.Jsonx.to_string v in
  check_true "rendering is newline-free" (not (String.contains s '\n'));
  check_true "and carriage-return-free" (not (String.contains s '\r'))

let test_jsonx_parse_atoms () =
  let ok s = match Serve.Jsonx.parse s with Ok v -> v | Error e -> Alcotest.failf "%s: %s" s e in
  check_true "true" (ok "true" = Bool true);
  check_true "null" (ok "null" = Null);
  check_true "int" (ok "42" = Num 42.);
  check_true "negative float" (ok "-2.5e1" = Num (-25.));
  check_true "whitespace tolerated" (ok "  [ 1 , 2 ]  " = Arr [ Num 1.; Num 2. ]);
  check_true "escape decoding" (ok {|"a\nb\u0041"|} = Str "a\nbA");
  (* Surrogate pair: U+1F600 as \ud83d\ude00 must decode to 4 UTF-8 bytes. *)
  check_true "surrogate pair" (ok {|"\ud83d\ude00"|} = Str "\xf0\x9f\x98\x80")

let test_jsonx_rejects_malformed () =
  let bad s =
    match Serve.Jsonx.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error e -> check_true "error is descriptive" (String.length e > 0)
  in
  (* Truncations of a valid line: every strict prefix must be rejected. *)
  let line = {|{"op":"run","id":"E7","seed":1}|} in
  for len = 1 to String.length line - 1 do
    bad (String.sub line 0 len)
  done;
  bad "";
  bad "tru";
  bad "{\"a\":1,}";
  bad "[1,2";
  bad "\"unterminated";
  bad "\"bad \\x escape\"";
  bad "\"raw \n newline\"";
  bad "{\"a\":1} trailing";
  bad "01e";
  bad "\"lone surrogate \\ud83d\""

(* --- Protocol: request / msg round-trips --- *)

let test_protocol_request_roundtrip () =
  let cases =
    [
      (None, Serve.Protocol.List);
      (Some 7, Serve.Protocol.Ping);
      ( Some 0,
        Serve.Protocol.Run
          { id = "E7"; seed = 1337; scale = Simulate.Runner.Quick; render = Simulate.Registry.Scorecard } );
      ( None,
        Serve.Protocol.Run
          { id = "E1"; seed = -3; scale = Simulate.Runner.Large; render = Simulate.Registry.Full } );
    ]
  in
  List.iter
    (fun (req, r) ->
      let line = Serve.Protocol.encode_request ?req r in
      check_true "one line" (not (String.contains line '\n'));
      match Serve.Protocol.decode_request line with
      | Ok (req', r') -> check_true "round-trips" (req' = req && r' = r)
      | Error e -> Alcotest.failf "decode failed: %s" e)
    cases

let test_protocol_request_defaults () =
  (* Wire defaults mirror the CLI: seed 42, scale full, render full. *)
  match Serve.Protocol.decode_request {|{"op":"run","id":"E2"}|} with
  | Ok (None, Serve.Protocol.Run { id = "E2"; seed = 42; scale = Simulate.Runner.Full; render = Simulate.Registry.Full }) ->
      ()
  | Ok _ -> Alcotest.fail "wrong defaults"
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_protocol_request_rejects () =
  let bad s =
    match Serve.Protocol.decode_request s with
    | Ok _ -> Alcotest.failf "accepted bad request %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad {|{"op":"run"}|} (* no id *);
  bad {|{"op":"walk","id":"E1"}|} (* unknown type *);
  bad {|{"op":"run","id":"E1","scale":"huge"}|};
  bad {|{"op":"run","id":"E1","render":"sparkline"}|};
  bad {|{"op":"run","id":"E1","seed":"forty-two"}|};
  bad {|"run"|};
  (* Truncations of a valid request line. *)
  let line = Serve.Protocol.encode_request ~req:3 (Serve.Protocol.Run { id = "E7"; seed = 9; scale = Simulate.Runner.Quick; render = Simulate.Registry.Full }) in
  for len = 1 to String.length line - 1 do
    bad (String.sub line 0 len)
  done

let test_protocol_msg_roundtrip () =
  let cases =
    [
      Serve.Protocol.Progress { req = 1; id = "E7"; completed = 3; total = 12; sub = None };
      Serve.Protocol.Progress
        { req = 0; id = "E1"; completed = 0; total = 1; sub = Some ("E1", 40, 105) };
      Serve.Protocol.Result
        {
          req = 2;
          id = "E2";
          ok = true;
          cached = false;
          seconds = 0.125;
          degraded = 0;
          output = "== table ==\n  a  b\n  1  2\nquote \" backslash \\ done\n";
        };
      Serve.Protocol.Result
        { req = 9; id = "E3"; ok = false; cached = true; seconds = 0.; degraded = 2; output = "" };
      Serve.Protocol.Listing
        { req = 0; experiments = [ ("E1", "flooding vs bound"); ("E2", "crossover, \"quoted\"") ] };
      Serve.Protocol.Pong { req = 5 };
      Serve.Protocol.Error { req = -1; message = "unknown experiment \"E99\"" };
    ]
  in
  List.iter
    (fun m ->
      let line = Serve.Protocol.encode_msg m in
      check_true "one line even with multi-line output" (not (String.contains line '\n'));
      match Serve.Protocol.decode_msg line with
      | Ok m' -> check_true "round-trips" (m = m')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    cases

let test_protocol_msg_rejects () =
  let bad s =
    match Serve.Protocol.decode_msg s with
    | Ok _ -> Alcotest.failf "accepted bad msg %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{}";
  bad {|{"frame":"result"}|};
  bad {|{"frame":"nonsense","req":1}|};
  let line =
    Serve.Protocol.encode_msg
      (Serve.Protocol.Result
         { req = 1; id = "E1"; ok = true; cached = false; seconds = 1.; degraded = 0; output = "x\ny" })
  in
  for len = 1 to String.length line - 1 do
    bad (String.sub line 0 len)
  done

(* --- end to end: a real server on a Unix socket --- *)

let with_server f =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dyngraph-test-%d.sock" (Unix.getpid ()))
  in
  let server =
    Serve.Server.create
      { Serve.Server.socket_path; tcp_port = None; jobs = 1; executors = 1; procs = 0; cache_capacity = 8 }
  in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop server)
    (fun () -> f socket_path)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

type result_frame = { r_ok : bool; r_cached : bool; r_output : string }

(* Read frames until this request's result, counting progress frames
   along the way. *)
let await_result ic ~req =
  let progress = ref 0 in
  let rec go () =
    match Serve.Protocol.decode_msg (input_line ic) with
    | Ok (Serve.Protocol.Progress p) when p.req = req ->
        incr progress;
        go ()
    | Ok (Serve.Protocol.Result r) when r.req = req ->
        ({ r_ok = r.ok; r_cached = r.cached; r_output = r.output }, !progress)
    | Ok (Serve.Protocol.Error e) -> Alcotest.failf "server error: %s" e.message
    | Ok _ -> go ()
    | Error e -> Alcotest.failf "bad frame from server: %s" e
  in
  go ()

let test_server_end_to_end () =
  with_server (fun path ->
      let fd = connect path in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* ping *)
          send_line fd (Serve.Protocol.encode_request ~req:99 Serve.Protocol.Ping);
          (match Serve.Protocol.decode_msg (input_line ic) with
          | Ok (Serve.Protocol.Pong { req = 99 }) -> ()
          | _ -> Alcotest.fail "expected pong 99");
          (* list covers the registry *)
          send_line fd (Serve.Protocol.encode_request ~req:98 Serve.Protocol.List);
          (match Serve.Protocol.decode_msg (input_line ic) with
          | Ok (Serve.Protocol.Listing { req = 98; experiments }) ->
              Alcotest.(check int) "listing covers the registry"
                (List.length Simulate.Registry.all)
                (List.length experiments);
              check_true "E1 listed" (List.mem_assoc "E1" experiments)
          | _ -> Alcotest.fail "expected listing 98");
          (* run: byte-identical to the batch path, then cached on repeat *)
          let run_req =
            Serve.Protocol.Run
              { id = "E2"; seed = 7; scale = Simulate.Runner.Quick; render = Simulate.Registry.Full }
          in
          send_line fd (Serve.Protocol.encode_request ~req:0 run_req);
          let r0, _ = await_result ic ~req:0 in
          check_true "first run not cached" (not r0.r_cached);
          let expected_output, expected_ok, _, _ =
            match Simulate.Registry.find "E2" with
            | Some e -> Simulate.Registry.single_outcome ~seed:7 ~scale:Simulate.Runner.Quick e
            | None -> Alcotest.fail "E2 not registered"
          in
          Alcotest.(check string) "output byte-identical to the batch path" expected_output
            r0.r_output;
          check_true "verdict matches the batch path" (r0.r_ok = expected_ok);
          send_line fd (Serve.Protocol.encode_request ~req:1 run_req);
          let r1, _ = await_result ic ~req:1 in
          check_true "repeat served from cache" r1.r_cached;
          Alcotest.(check string) "cached output identical" r0.r_output r1.r_output;
          (* different seed misses the cache *)
          send_line fd
            (Serve.Protocol.encode_request ~req:2
               (Serve.Protocol.Run
                  { id = "E2"; seed = 8; scale = Simulate.Runner.Quick; render = Simulate.Registry.Full }));
          let r2, _ = await_result ic ~req:2 in
          check_true "new seed misses the cache" (not r2.r_cached);
          check_true "and renders different bytes" (r2.r_output <> r0.r_output);
          (* a malformed line answers with an error frame, connection stays up *)
          send_line fd "{\"op\":\"run\"";
          (match Serve.Protocol.decode_msg (input_line ic) with
          | Ok (Serve.Protocol.Error _) -> ()
          | _ -> Alcotest.fail "expected an error frame for a truncated request");
          send_line fd (Serve.Protocol.encode_request ~req:97 Serve.Protocol.Ping);
          match Serve.Protocol.decode_msg (input_line ic) with
          | Ok (Serve.Protocol.Pong { req = 97 }) -> ()
          | _ -> Alcotest.fail "connection should survive a malformed line"))

let test_server_concurrent_clients () =
  with_server (fun path ->
      (* Two results computed through the load generator's own client
         loop: progress frames stream per request and nothing errors. *)
      let s =
        Serve.Load.run
          ~connect:(fun () -> connect path)
          ~clients:4 ~per_client:2 ~ids:[ "E2"; "E3" ] ~seed:11
          ~scale:Simulate.Runner.Quick ~render:Simulate.Registry.Full ()
      in
      Alcotest.(check int) "all requests completed" 8 s.Serve.Load.completed;
      Alcotest.(check int) "no errors" 0 s.Serve.Load.errors;
      check_true "repeats hit the warm cache" (s.Serve.Load.cached >= 1);
      check_true "progress frames streamed" (s.Serve.Load.progress_frames >= 1))

(* --- cost-weighted result cache --- *)

module Cache = Serve.Server.Cache

let store c key seconds = Cache.store c key ~output:("out:" ^ key) ~ok:true ~seconds

let test_cache_cost_weighted_eviction () =
  let c = Cache.create 4 in
  (* One expensive full-scale result among cheap quick ones. *)
  store c "E1|1|full|42" 30.0;
  for i = 0 to 2 do
    store c (Printf.sprintf "E2|1|quick|%d" i) 0.01
  done;
  Alcotest.(check int) "at capacity" 4 (Cache.length c);
  (* A burst of fresh cheap entries: each insertion evicts the
     minimum-credit entry, which must always be a cheap one — the
     measured-compute credit keeps the expensive result resident. *)
  for i = 3 to 40 do
    store c (Printf.sprintf "E2|1|quick|%d" i) 0.01
  done;
  Alcotest.(check int) "capacity held" 4 (Cache.length c);
  check_true "expensive entry survived the cheap burst"
    (Cache.find c "E1|1|full|42" <> None);
  check_true "earliest cheap entries evicted" (Cache.find c "E2|1|quick|0" = None)

let test_cache_hit_refreshes_credit () =
  let c = Cache.create 3 in
  store c "a" 0.10;
  store c "b" 0.30;
  store c "c" 0.31;
  (* Fill past capacity once so the cache's inflation level is above
     zero — "a" (cheapest) evicts, level rises to its credit. *)
  store c "d" 0.32;
  check_true "cheapest entry evicted first" (Cache.find c "a" = None);
  (* "b" is now the minimum-credit survivor; a hit lifts its credit to
     level + cost, above the untouched "c". The next eviction must
     therefore take "c", not the refreshed "b" — pure recency (or pure
     cost) ordering would pick the other victim. *)
  ignore (Cache.find c "b");
  store c "e" 0.05;
  check_true "hit-refreshed entry survived" (Cache.find c "b" <> None);
  check_true "untouched entry evicted" (Cache.find c "c" = None)

let test_cache_zero_capacity () =
  let c = Cache.create 0 in
  store c "k" 1.0;
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Cache.length c);
  check_true "no phantom hits" (Cache.find c "k" = None)

let suites =
  [
    ( "serve.jsonx",
      [
        Alcotest.test_case "render/parse round-trip" `Quick test_jsonx_roundtrip;
        Alcotest.test_case "rendering is one line" `Quick test_jsonx_single_line;
        Alcotest.test_case "parse atoms and escapes" `Quick test_jsonx_parse_atoms;
        Alcotest.test_case "rejects malformed and truncated" `Quick test_jsonx_rejects_malformed;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
        Alcotest.test_case "request wire defaults" `Quick test_protocol_request_defaults;
        Alcotest.test_case "request rejects bad lines" `Quick test_protocol_request_rejects;
        Alcotest.test_case "msg round-trip" `Quick test_protocol_msg_roundtrip;
        Alcotest.test_case "msg rejects bad lines" `Quick test_protocol_msg_rejects;
      ] );
    ( "serve.cache",
      [
        Alcotest.test_case "cost-weighted eviction" `Quick test_cache_cost_weighted_eviction;
        Alcotest.test_case "hits refresh credit" `Quick test_cache_hit_refreshes_credit;
        Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "end to end on a unix socket" `Slow test_server_end_to_end;
        Alcotest.test_case "concurrent clients via load" `Slow test_server_concurrent_clients;
      ] );
  ]
