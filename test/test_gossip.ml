open Helpers

let static g = Core.Dynamic.of_static g

let run_variant ?(cap = 5000) variant g source =
  Core.Gossip.run ~cap ~variant ~rng:(rng_of_seed 1) ~source (static g)

let test_gossip_complete_finishes () =
  let r = run_variant Core.Gossip.Push_pull (Graph.Builders.complete 32) 0 in
  match r.time with
  | Some t -> check_true "O(log n)-ish on K32" (t <= 20)
  | None -> Alcotest.fail "push-pull did not finish on K32"

let test_push_on_two_nodes () =
  let g = Graph.Static.of_edges ~n:2 [ (0, 1) ] in
  let r = run_variant Core.Gossip.Push g 0 in
  Alcotest.(check (option int)) "one round on an edge" (Some 1) r.time;
  Alcotest.(check (array int)) "trajectory" [| 1; 2 |] r.trajectory

let test_pull_star_is_fast () =
  (* Star, source = centre: every leaf's single neighbour is the centre,
     so one pull round informs everyone. *)
  let g = Graph.Builders.star 20 in
  let r = run_variant Core.Gossip.Pull g 0 in
  Alcotest.(check (option int)) "one pull round" (Some 1) r.time

let test_push_star_is_slow () =
  (* Star, source = centre, push only: the centre pushes to one uniform
     leaf per round — coupon collector, far more than one round. *)
  let g = Graph.Builders.star 20 in
  let r = run_variant Core.Gossip.Push g 0 in
  match r.time with
  | Some t -> check_true "coupon-collector slow" (t >= 19)
  | None -> Alcotest.fail "push on star did not finish"

let test_pull_from_leaf_on_star () =
  (* Source is a leaf: the centre pulls (or the source pushes) — with
     pull, every leaf asks the centre; once the centre is informed all
     remaining leaves learn in the next round. *)
  let g = Graph.Builders.star 20 in
  let r = run_variant Core.Gossip.Pull g 3 in
  (* Phase 1 is a geometric wait with mean 19 (the centre must pull the
     one informed leaf), so the bound leaves it a few means of headroom
     while still ruling out anything slower than two-phase behaviour. *)
  match r.time with
  | Some t -> check_true "two-phase pull" (t <= 60)
  | None -> Alcotest.fail "pull from leaf did not finish"

let test_gossip_cap () =
  let g = Graph.Static.of_edges ~n:3 [ (0, 1) ] in
  let r = run_variant ~cap:30 Core.Gossip.Push_pull g 0 in
  Alcotest.(check (option int)) "unreachable node" None r.time

let test_gossip_source_validation () =
  check_true "bad source raises"
    (try
       ignore (run_variant Core.Gossip.Push (Graph.Builders.cycle 4) 7);
       false
     with Invalid_argument _ -> true)

let test_contacts_counted () =
  let g = Graph.Builders.complete 8 in
  let r = run_variant Core.Gossip.Push_pull g 0 in
  (* Every node makes at most 2 contacts per round (one push + one pull
     attempt); at least the source pushes each round. *)
  (match r.time with
  | Some t ->
      check_true "contacts within per-round budget" (r.contacts <= 2 * 8 * t);
      check_true "contacts happened" (r.contacts >= t)
  | None -> Alcotest.fail "did not finish");
  ()

let q_gossip_trajectory_monotone =
  qtest ~count:30 "gossip trajectory monotone"
    QCheck2.Gen.(pair seed_gen (int_range 2 20))
    (fun (seed, n) ->
      let dyn = Edge_meg.Classic.make ~n ~p:(Float.min 1. (4. /. float_of_int n)) ~q:0.3 () in
      let r =
        Core.Gossip.run ~cap:2000 ~variant:Core.Gossip.Push_pull
          ~rng:(Prng.Rng.of_seed seed) ~source:0 dyn
      in
      r.trajectory.(0) = 1
      &&
      let mono = ref true in
      Array.iteri
        (fun i v -> if i > 0 && v < r.trajectory.(i - 1) then mono := false)
        r.trajectory;
      !mono)

let test_mean_time_deterministic () =
  let mk () = Edge_meg.Classic.make ~n:48 ~p:0.1 ~q:0.3 () in
  let a =
    Core.Gossip.mean_time ~variant:Core.Gossip.Push ~rng:(rng_of_seed 4) ~trials:5 (mk ())
  in
  let b =
    Core.Gossip.mean_time ~variant:Core.Gossip.Push ~rng:(rng_of_seed 4) ~trials:5 (mk ())
  in
  check_close "reproducible" (Stats.Summary.mean a) (Stats.Summary.mean b)

let test_push_pull_dominates_push () =
  let mk () = Edge_meg.Classic.make ~n:96 ~p:(4. /. 96.) ~q:0.4 () in
  let push =
    Core.Gossip.mean_time ~variant:Core.Gossip.Push ~rng:(rng_of_seed 5) ~trials:10 (mk ())
  in
  let both =
    Core.Gossip.mean_time ~variant:Core.Gossip.Push_pull ~rng:(rng_of_seed 6) ~trials:10
      (mk ())
  in
  check_true "push-pull no slower on average"
    (Stats.Summary.mean both <= Stats.Summary.mean push +. 1.)

let suites =
  [
    ( "core.gossip",
      [
        Alcotest.test_case "push-pull on K32" `Quick test_gossip_complete_finishes;
        Alcotest.test_case "push on an edge" `Quick test_push_on_two_nodes;
        Alcotest.test_case "pull star from centre" `Quick test_pull_star_is_fast;
        Alcotest.test_case "push star coupon collector" `Quick test_push_star_is_slow;
        Alcotest.test_case "pull star from leaf" `Quick test_pull_from_leaf_on_star;
        Alcotest.test_case "cap" `Quick test_gossip_cap;
        Alcotest.test_case "source validation" `Quick test_gossip_source_validation;
        Alcotest.test_case "contact accounting" `Quick test_contacts_counted;
        Alcotest.test_case "mean_time deterministic" `Quick test_mean_time_deterministic;
        Alcotest.test_case "push-pull dominates push" `Quick test_push_pull_dominates_push;
        q_gossip_trajectory_monotone;
      ] );
  ]
