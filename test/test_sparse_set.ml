open Helpers

(* Graph.Sparse_set: the fixed-universe sparse set behind the
   edge-Markovian state engine. Correctness is checked against a
   Hashtbl model under random operation sequences, and the
   geometric-skip subsampling paths are checked to hit each element
   with the stated probability via a chi-square statistic at fixed
   seeds. *)

let test_basics () =
  let s = Graph.Sparse_set.create 10 in
  Alcotest.(check int) "universe" 10 (Graph.Sparse_set.universe s);
  Alcotest.(check int) "empty" 0 (Graph.Sparse_set.length s);
  check_true "nothing present" (not (Graph.Sparse_set.mem s 3));
  Graph.Sparse_set.add s 3;
  Graph.Sparse_set.add s 7;
  Graph.Sparse_set.add s 3;
  Alcotest.(check int) "idempotent add" 2 (Graph.Sparse_set.length s);
  check_true "mem 3" (Graph.Sparse_set.mem s 3);
  check_true "mem 7" (Graph.Sparse_set.mem s 7);
  check_true "not mem 0" (not (Graph.Sparse_set.mem s 0));
  Alcotest.(check int) "dense order" 3 (Graph.Sparse_set.get s 0);
  Graph.Sparse_set.remove s 3;
  check_true "removed" (not (Graph.Sparse_set.mem s 3));
  Alcotest.(check int) "swap-remove keeps 7" 7 (Graph.Sparse_set.get s 0);
  Graph.Sparse_set.remove s 3;
  Alcotest.(check int) "remove absent is a no-op" 1 (Graph.Sparse_set.length s);
  Graph.Sparse_set.clear s;
  Alcotest.(check int) "clear" 0 (Graph.Sparse_set.length s);
  check_true "clear disarms stale positions" (not (Graph.Sparse_set.mem s 7))

let test_fill_all () =
  let s = Graph.Sparse_set.create 25 in
  Graph.Sparse_set.add s 13;
  Graph.Sparse_set.fill_all s;
  Alcotest.(check int) "full" 25 (Graph.Sparse_set.length s);
  for x = 0 to 24 do
    check_true "every element present" (Graph.Sparse_set.mem s x)
  done;
  Graph.Sparse_set.remove s 0;
  Alcotest.(check int) "swap-remove from full" 24 (Graph.Sparse_set.length s);
  check_true "0 gone" (not (Graph.Sparse_set.mem s 0))

let elements s =
  let acc = ref [] in
  Graph.Sparse_set.iter s (fun x -> acc := x :: !acc);
  List.sort compare !acc

(* Random add/remove/clear/fill_all sequences vs a Hashtbl model:
   membership, cardinality and the dense iteration must agree at every
   step. *)
let q_vs_hashtbl_model =
  qtest ~count:200 "random op sequences match a Hashtbl model"
    QCheck2.Gen.(pair seed_gen (int_range 1 80))
    (fun (seed, universe) ->
      let rng = Prng.Rng.of_seed seed in
      let s = Graph.Sparse_set.create universe in
      let model = Hashtbl.create 64 in
      let ok = ref true in
      for _ = 1 to 200 do
        let x = Prng.Rng.int rng universe in
        (match Prng.Rng.int rng 20 with
        | 0 ->
            Graph.Sparse_set.clear s;
            Hashtbl.reset model
        | 1 ->
            Graph.Sparse_set.fill_all s;
            Hashtbl.reset model;
            for y = 0 to universe - 1 do
              Hashtbl.replace model y ()
            done
        | k when k < 12 ->
            Graph.Sparse_set.add s x;
            Hashtbl.replace model x ()
        | _ ->
            Graph.Sparse_set.remove s x;
            Hashtbl.remove model x);
        ok :=
          !ok
          && Graph.Sparse_set.length s = Hashtbl.length model
          && Graph.Sparse_set.mem s x = Hashtbl.mem model x
      done;
      !ok
      && elements s = List.sort compare (Hashtbl.fold (fun x () acc -> x :: acc) model []))

(* remove_bernoulli must remove exactly the elements it reports and
   leave a consistent set behind. *)
let q_remove_bernoulli_consistent =
  qtest ~count:100 "remove_bernoulli reports exactly what it removes"
    QCheck2.Gen.(pair seed_gen (int_range 1 60))
    (fun (seed, universe) ->
      let rng = Prng.Rng.of_seed seed in
      let s = Graph.Sparse_set.create universe in
      Graph.Sparse_set.fill_all s;
      let removed = ref [] in
      Graph.Sparse_set.remove_bernoulli s rng ~p:0.4 (fun x -> removed := x :: !removed);
      let removed = List.sort compare !removed in
      List.length removed + Graph.Sparse_set.length s = universe
      && List.for_all (fun x -> not (Graph.Sparse_set.mem s x)) removed
      && elements s = List.filter (fun x -> not (List.mem x removed)) (List.init universe Fun.id))

(* Chi-square goodness of fit for the geometric-skip subsample: over T
   passes, element e is hit Binomial(T, p) times, so
   X² = Σ_e (obs_e - Tp)² / (Tp(1-p)) is approximately χ²_k
   (mean k, sd √(2k)). k = 50, so accept [20, 90] ≈ ±3.5 sd — a fixed
   seed makes the check deterministic. *)
let chi_square ~hits ~t ~p =
  let mean = float_of_int t *. p in
  let var = mean *. (1. -. p) in
  Array.fold_left (fun acc h -> acc +. (((float_of_int h -. mean) ** 2.) /. var)) 0. hits

let test_iter_bernoulli_chi_square () =
  let k = 50 and t = 2000 and p = 0.3 in
  let s = Graph.Sparse_set.create k in
  Graph.Sparse_set.fill_all s;
  let rng = rng_of_seed 1234 in
  let hits = Array.make k 0 in
  for _ = 1 to t do
    Graph.Sparse_set.iter_bernoulli s rng ~p (fun x -> hits.(x) <- hits.(x) + 1)
  done;
  let x2 = chi_square ~hits ~t ~p in
  if x2 < 20. || x2 > 90. then
    Alcotest.failf "iter_bernoulli chi-square %.1f outside [20, 90] (k = %d)" x2 k

let test_remove_bernoulli_chi_square () =
  let k = 50 and t = 2000 and p = 0.3 in
  let s = Graph.Sparse_set.create k in
  let rng = rng_of_seed 4321 in
  let hits = Array.make k 0 in
  for _ = 1 to t do
    Graph.Sparse_set.fill_all s;
    Graph.Sparse_set.remove_bernoulli s rng ~p (fun x -> hits.(x) <- hits.(x) + 1)
  done;
  let x2 = chi_square ~hits ~t ~p in
  if x2 < 20. || x2 > 90. then
    Alcotest.failf "remove_bernoulli chi-square %.1f outside [20, 90] (k = %d)" x2 k

let test_bernoulli_extremes () =
  let s = Graph.Sparse_set.create 30 in
  Graph.Sparse_set.fill_all s;
  let rng = rng_of_seed 5 in
  let count = ref 0 in
  Graph.Sparse_set.iter_bernoulli s rng ~p:0. (fun _ -> incr count);
  Alcotest.(check int) "p=0 visits nothing" 0 !count;
  Graph.Sparse_set.iter_bernoulli s rng ~p:1. (fun _ -> incr count);
  Alcotest.(check int) "p=1 visits everything" 30 !count;
  Graph.Sparse_set.remove_bernoulli s rng ~p:0. (fun _ -> ());
  Alcotest.(check int) "p=0 removes nothing" 30 (Graph.Sparse_set.length s);
  Graph.Sparse_set.remove_bernoulli s rng ~p:1. (fun _ -> ());
  Alcotest.(check int) "p=1 removes everything" 0 (Graph.Sparse_set.length s);
  check_true "out-of-range p raises"
    (try
       Graph.Sparse_set.iter_bernoulli s rng ~p:1.5 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* --- storage-backed implementations: I32 and Big vs the heap set ---

   The mli promises more than set equality: identical operation
   sequences must produce identical DENSE ORDERS (hence identical draw
   streams in the subsampling scans). So the checks below compare the
   dense arrays slot by slot, and the removal scans' (element, slot)
   streams, not just membership. *)

module S = Graph.Sparse_set

let dense_heap s = List.init (S.length s) (S.get s)

let dense_i32 s = List.init (S.I32.length s) (S.I32.get s)

let dense_big s = List.init (S.Big.length s) (S.Big.get s)

let q_i32_matches_heap =
  qtest ~count:200 "I32 backing mirrors the heap set exactly"
    QCheck2.Gen.(pair seed_gen (int_range 1 80))
    (fun (seed, universe) ->
      let rng = Prng.Rng.of_seed seed in
      let a = S.create universe in
      let b = S.I32.create universe in
      let ok = ref true in
      for _ = 1 to 200 do
        let x = Prng.Rng.int rng universe in
        (match Prng.Rng.int rng 20 with
        | 0 ->
            S.clear a;
            S.I32.clear b
        | 1 ->
            S.fill_all a;
            S.I32.fill_all b
        | k when k < 12 ->
            S.add a x;
            S.I32.add b x
        | _ ->
            S.remove a x;
            S.I32.remove b x);
        ok :=
          !ok
          && S.length a = S.I32.length b
          && S.mem a x = S.I32.mem b x
          && (not (S.mem a x)) || S.find a x = S.I32.find b x
      done;
      !ok && dense_heap a = dense_i32 b)

let q_big_matches_heap =
  qtest ~count:200 "Big backing mirrors the heap set exactly"
    QCheck2.Gen.(pair seed_gen (int_range 1 80))
    (fun (seed, universe) ->
      let rng = Prng.Rng.of_seed seed in
      let a = S.create universe in
      let b = S.Big.create ~capacity:1 universe in
      let ok = ref true in
      for _ = 1 to 200 do
        let x = Prng.Rng.int rng universe in
        (match Prng.Rng.int rng 20 with
        | 0 ->
            S.clear a;
            S.Big.clear b
        | k when k < 12 ->
            S.add a x;
            S.Big.add b x
        | _ ->
            S.remove a x;
            S.Big.remove b x);
        ok :=
          !ok
          && S.length a = S.Big.length b
          && S.mem a x = S.Big.mem b x
          && (not (S.mem a x)) || S.find a x = S.Big.find b x
      done;
      !ok && dense_heap a = dense_big b)

(* The removal scans must report the same (element, slot) stream on
   every backing — that stream is what the edge-MEG death mirror
   replays, so a divergence would silently corrupt off-heap models. *)
let q_removal_streams_match =
  qtest ~count:100 "removal scans emit identical (x, slot) streams on every backing"
    QCheck2.Gen.(pair seed_gen (int_range 1 60))
    (fun (seed, universe) ->
      let build_heap () =
        let s = S.create universe in
        for x = 0 to universe - 1 do
          S.add s x
        done;
        s
      in
      let i32 = S.I32.create universe in
      let big = S.Big.create universe in
      for x = 0 to universe - 1 do
        S.I32.add i32 x;
        S.Big.add big x
      done;
      let stream remover =
        let acc = ref [] in
        remover (fun x i -> acc := (x, i) :: !acc);
        List.rev !acc
      in
      let p = 0.35 in
      let bern_heap =
        let s = build_heap () in
        stream (fun f -> S.remove_bernoulli_pos s (Prng.Rng.of_seed seed) ~p f)
      in
      let bern_i32 = stream (fun f -> S.I32.remove_bernoulli_pos i32 (Prng.Rng.of_seed seed) ~p f) in
      let bern_big = stream (fun f -> S.Big.remove_bernoulli_pos big (Prng.Rng.of_seed seed) ~p f) in
      let geo = Prng.Rng.Geo.make ~p in
      let geo_heap =
        let s = build_heap () in
        stream (fun f -> S.remove_geo_pos s geo (Prng.Rng.of_seed (seed + 1)) f)
      in
      (* Refill the storage-backed sets with the survivors removed, so
         rebuild from scratch for the geo pass. *)
      let i32 = S.I32.create universe in
      let big = S.Big.create universe in
      for x = 0 to universe - 1 do
        S.I32.add i32 x;
        S.Big.add big x
      done;
      let geo_i32 = stream (fun f -> S.I32.remove_geo_pos i32 geo (Prng.Rng.of_seed (seed + 1)) f) in
      let geo_big = stream (fun f -> S.Big.remove_geo_pos big geo (Prng.Rng.of_seed (seed + 1)) f) in
      bern_heap = bern_i32 && bern_heap = bern_big && geo_heap = geo_i32 && geo_heap = geo_big)

(* Universe boundaries: 0 (every op is a no-op or out of range), 1 (the
   swap-remove degenerates to self-swap), and members at the top of the
   representable range. *)
let test_backing_boundaries () =
  let z = S.I32.create 0 in
  Alcotest.(check int) "I32 empty universe" 0 (S.I32.length z);
  S.I32.clear z;
  let z = S.Big.create 0 in
  Alcotest.(check int) "Big empty universe" 0 (S.Big.length z);
  let one = S.I32.create 1 in
  S.I32.add one 0;
  S.I32.add one 0;
  Alcotest.(check int) "I32 singleton idempotent" 1 (S.I32.length one);
  S.I32.remove one 0;
  Alcotest.(check int) "I32 singleton removed" 0 (S.I32.length one);
  let one = S.Big.create 1 in
  S.Big.add one 0;
  S.Big.remove one 0;
  check_true "Big singleton" (not (S.Big.mem one 0));
  (* Members far beyond the int32 range — the pair-index universe of a
     million-node graph is ~2^39. *)
  let u = 1 lsl 40 in
  let big = S.Big.create u in
  let top = u - 1 in
  S.Big.add big top;
  S.Big.add big (Graph.Storage.max_nodes + 7);
  check_true "Big holds huge member" (S.Big.mem big top);
  Alcotest.(check int) "Big dense order" top (S.Big.get big 0);
  S.Big.remove big top;
  check_true "Big swap-remove of huge member" (not (S.Big.mem big top));
  Alcotest.(check int) "survivor took slot 0" (Graph.Storage.max_nodes + 7) (S.Big.get big 0);
  (* The I32 backing caps at Storage.max_nodes; the top representable
     member must round-trip through the int32 dense array. *)
  let small_top = 1 lsl 16 in
  let s = S.I32.create small_top in
  S.I32.add s (small_top - 1);
  Alcotest.(check int) "I32 top member round-trips" (small_top - 1) (S.I32.get s 0)

let suites =
  [
    ( "graph.sparse_set",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "fill_all" `Quick test_fill_all;
        Alcotest.test_case "iter_bernoulli chi-square" `Quick test_iter_bernoulli_chi_square;
        Alcotest.test_case "remove_bernoulli chi-square" `Quick test_remove_bernoulli_chi_square;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        q_vs_hashtbl_model;
        q_remove_bernoulli_consistent;
        Alcotest.test_case "storage backing boundaries" `Quick test_backing_boundaries;
        q_i32_matches_heap;
        q_big_matches_heap;
        q_removal_streams_match;
      ] );
  ]
