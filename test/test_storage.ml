open Helpers
module St = Graph.Storage

(* Graph.Storage: the off-heap backing for big per-run state. The
   vectors and bitset are checked for round-trips, growth and boundary
   bits; the open-addressing Hash is checked against a Hashtbl model
   under random replace/remove/find sequences (which exercises the
   backward-shift deletion and the load-factor growth); and the
   accessors are checked to be allocation-free, which is the whole
   point of the layer. *)

let test_i32_basics () =
  let v = St.I32.create 8 in
  Alcotest.(check int) "length" 8 (St.I32.length v);
  for i = 0 to 7 do
    Alcotest.(check int) "zero-filled" 0 (St.I32.get v i)
  done;
  St.I32.set v 3 42;
  St.I32.set v 0 (-7);
  Alcotest.(check int) "round-trip" 42 (St.I32.get v 3);
  Alcotest.(check int) "negative round-trip" (-7) (St.I32.get v 0);
  let big = (1 lsl 31) - 1 in
  St.I32.set v 1 big;
  Alcotest.(check int) "int32 max round-trips" big (St.I32.get v 1);
  St.I32.fill v 2 4 9;
  Alcotest.(check int) "fill start" 9 (St.I32.get v 2);
  Alcotest.(check int) "fill end" 9 (St.I32.get v 5);
  Alcotest.(check int) "fill leaves below" (-7) (St.I32.get v 0);
  Alcotest.(check int) "fill leaves above" 0 (St.I32.get v 6);
  let w = St.I32.create 8 in
  St.I32.blit v 2 w 1 4;
  Alcotest.(check int) "blit copies" 9 (St.I32.get w 4);
  Alcotest.(check int) "blit leaves rest" 0 (St.I32.get w 0)

let test_i32_ensure () =
  let v = St.I32.create 4 in
  for i = 0 to 3 do
    St.I32.set v i (i + 1)
  done;
  St.I32.ensure v 3;
  Alcotest.(check int) "ensure never shrinks" 4 (St.I32.length v);
  St.I32.ensure v 100;
  check_true "ensure grows to at least the ask" (St.I32.length v >= 100);
  for i = 0 to 3 do
    Alcotest.(check int) "contents preserved" (i + 1) (St.I32.get v i)
  done;
  Alcotest.(check int) "new cells zero" 0 (St.I32.get v 99)

let test_ix_basics () =
  let v = St.Ix.create 4 in
  (* Pair indices overflow int32 — the reason Ix exists. *)
  let big = 1 lsl 39 in
  St.Ix.set v 0 big;
  St.Ix.set v 1 (big + 1);
  Alcotest.(check int) "beyond-int32 round-trip" big (St.Ix.get v 0);
  St.Ix.ensure v 50;
  Alcotest.(check int) "growth preserves" (big + 1) (St.Ix.get v 1);
  Alcotest.(check int) "new cells zero" 0 (St.Ix.get v 49);
  St.Ix.fill v 2 2 5;
  Alcotest.(check int) "fill" 5 (St.Ix.get v 3)

let test_bitset () =
  let n = 77 in
  (* deliberately not a multiple of 8 *)
  let b = St.Bitset.create n in
  Alcotest.(check int) "length" n (St.Bitset.length b);
  for i = 0 to n - 1 do
    check_true "starts clear" (not (St.Bitset.get b i))
  done;
  List.iter (fun i -> St.Bitset.set b i) [ 0; 7; 8; 63; 64; n - 1 ];
  List.iter
    (fun i -> check_true (Printf.sprintf "bit %d set" i) (St.Bitset.get b i))
    [ 0; 7; 8; 63; 64; n - 1 ];
  check_true "neighbours untouched" (not (St.Bitset.get b 1));
  check_true "neighbours untouched" (not (St.Bitset.get b 62));
  St.Bitset.clear b 8;
  check_true "clear one bit" (not (St.Bitset.get b 8));
  check_true "clear leaves same byte" (St.Bitset.get b 7);
  St.Bitset.clear_all b;
  for i = 0 to n - 1 do
    check_true "clear_all" (not (St.Bitset.get b i))
  done

(* Random replace/remove/find sequences vs a Hashtbl model. The key
   distribution mixes clustered keys (stressing linear-probe runs and
   backward-shift deletion) with huge pair-index-sized keys. *)
let q_hash_vs_hashtbl =
  qtest ~count:200 "Hash matches a Hashtbl model"
    QCheck2.Gen.(pair seed_gen (int_range 1 400))
    (fun (seed, ops) ->
      let rng = Prng.Rng.of_seed seed in
      let h = St.Hash.create ~capacity:4 () in
      let model = Hashtbl.create 64 in
      let key () =
        match Prng.Rng.int rng 3 with
        | 0 -> Prng.Rng.int rng 16 (* clustered *)
        | 1 -> Prng.Rng.int rng 1000
        | _ -> (1 lsl 38) + Prng.Rng.int rng 64 (* pair-index sized *)
      in
      let ok = ref true in
      for _ = 1 to ops do
        let k = key () in
        (match Prng.Rng.int rng 10 with
        | 0 ->
            St.Hash.clear h;
            Hashtbl.reset model
        | n when n < 7 ->
            let v = Prng.Rng.int rng 1_000_000 in
            St.Hash.replace h k v;
            Hashtbl.replace model k v
        | _ ->
            St.Hash.remove h k;
            Hashtbl.remove model k);
        ok :=
          !ok
          && St.Hash.length h = Hashtbl.length model
          && St.Hash.mem h k = Hashtbl.mem model k
          && St.Hash.find h k = Option.value ~default:(-1) (Hashtbl.find_opt model k)
      done;
      !ok
      && Hashtbl.fold (fun k v acc -> acc && St.Hash.find h k = v) model true)

let test_hash_growth_and_deletion () =
  let h = St.Hash.create ~capacity:2 () in
  let n = 10_000 in
  for k = 0 to n - 1 do
    St.Hash.replace h k (k * 3)
  done;
  Alcotest.(check int) "grows through many inserts" n (St.Hash.length h);
  (* Delete every even key, then verify every odd binding survived the
     backward shifts. *)
  for k = 0 to n - 1 do
    if k mod 2 = 0 then St.Hash.remove h k
  done;
  Alcotest.(check int) "half deleted" (n / 2) (St.Hash.length h);
  let ok = ref true in
  for k = 0 to n - 1 do
    let expect = if k mod 2 = 0 then -1 else k * 3 in
    if St.Hash.find h k <> expect then ok := false
  done;
  check_true "odd bindings survive even deletions" !ok;
  Alcotest.(check int) "find on absent" (-1) (St.Hash.find h (n + 5))

(* The layer's contract: reads and writes through the accessors do not
   allocate, even without flambda (the int32 box/unbox pair cancels in
   argument position). A boxing regression would cost 2+ words per
   element here; allow a few words of slack for the Gc.minor_words
   float results themselves. *)
let test_accessors_allocation_free () =
  let len = 4096 in
  let v = St.I32.create len in
  let b = St.Bitset.create len in
  for i = 0 to len - 1 do
    St.I32.set v i (i * 3)
  done;
  let sum = ref 0 in
  let before = Gc.minor_words () in
  for i = 0 to len - 1 do
    sum := !sum + St.I32.unsafe_get v i;
    St.I32.unsafe_set v i !sum;
    if St.Bitset.unsafe_get b i then St.Bitset.unsafe_clear b i else St.Bitset.unsafe_set b i
  done;
  let after = Gc.minor_words () in
  check_true "loop ran" (!sum > 0);
  if after -. before > 64. then
    Alcotest.failf "storage accessors allocated %.0f minor words over %d iterations"
      (after -. before) len

let suites =
  [
    ( "graph.storage",
      [
        Alcotest.test_case "I32 basics" `Quick test_i32_basics;
        Alcotest.test_case "I32 ensure" `Quick test_i32_ensure;
        Alcotest.test_case "Ix basics" `Quick test_ix_basics;
        Alcotest.test_case "Bitset" `Quick test_bitset;
        Alcotest.test_case "Hash growth and deletion" `Quick test_hash_growth_and_deletion;
        Alcotest.test_case "accessors allocation-free" `Quick test_accessors_allocation_free;
        q_hash_vs_hashtbl;
      ] );
  ]
