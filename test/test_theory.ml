open Helpers

let test_theorem1_monotonicity () =
  let base = Theory.Bounds.theorem1 ~m:10. ~alpha:0.1 ~beta:1. ~n:100 in
  check_true "decreasing in alpha"
    (Theory.Bounds.theorem1 ~m:10. ~alpha:0.2 ~beta:1. ~n:100 < base);
  check_true "increasing in beta"
    (Theory.Bounds.theorem1 ~m:10. ~alpha:0.1 ~beta:2. ~n:100 > base);
  check_close ~eps:1e-9 "linear in m" (2. *. base)
    (Theory.Bounds.theorem1 ~m:20. ~alpha:0.1 ~beta:1. ~n:100)

let test_theorem1_value () =
  (* n=e^2 ~ not integral; use explicit arithmetic instead: n=100,
     alpha=1/100, beta=1 -> (1/(100*0.01)+1)^2 = 4; log^2(100). *)
  let expected = 4. *. (log 100. ** 2.) in
  check_close ~eps:1e-9 "hand value" expected
    (Theory.Bounds.theorem1 ~m:1. ~alpha:0.01 ~beta:1. ~n:100)

let test_theorem3_value () =
  let expected = 9. *. (log 100. ** 3.) in
  check_close ~eps:1e-9 "hand value" expected
    (Theory.Bounds.theorem3 ~t_mix:1. ~p_nm:0.02 ~eta:2.5 ~n:100)

let test_eq2_properties () =
  (* log n / log(1+np): increasing in n at fixed c = np requires care;
     at fixed p it decreases as... check simple relations instead. *)
  let b1 = Theory.Bounds.edge_meg_eq2 ~n:100 ~p:0.04 in
  check_close ~eps:1e-9 "hand value" (log 100. /. log 5.) b1;
  check_true "denser is faster"
    (Theory.Bounds.edge_meg_eq2 ~n:100 ~p:0.1 < b1)

let test_edge_meg_general_value () =
  let n = 100 and p = 0.01 and q = 0.99 in
  let expected = 1. /. 1. *. (((1. /. 1.) +. 1.) ** 2.) *. (log 100. ** 2.) in
  check_close ~eps:1e-9 "hand value" expected (Theory.Bounds.edge_meg_general ~n ~p ~q)

let test_corollary4_terms () =
  (* With delta = lambda = 1 (perfectly uniform), vol = L^2, d = 2:
     bound = t_mix (L^2/(n r^2) + 1)^2 log^3 n — the waypoint formula
     with t_mix = L/v. *)
  let l = 10. and r = 2. and n = 50 in
  let via_cor4 =
    Theory.Bounds.corollary4 ~t_mix:(l /. 1.) ~delta:1. ~lambda:1. ~vol:(l *. l) ~r ~d:2 ~n
  in
  let via_waypoint = Theory.Bounds.waypoint ~l ~v_max:1. ~r ~n in
  check_close ~eps:1e-9 "corollary 4 specialises to waypoint formula" via_waypoint via_cor4

let test_corollary5_vs_6 () =
  (* Corollary 6 has delta^2|V|/n + delta^7 vs 5's |V|/n + delta^3: for
     delta = 1 they coincide. *)
  let c5 = Theory.Bounds.corollary5 ~t_mix:3. ~n_points:100 ~delta:1. ~n:50 in
  let c6 = Theory.Bounds.corollary6 ~t_mix:3. ~n_points:100 ~delta:1. ~n:50 in
  check_close ~eps:1e-9 "coincide at delta=1" c5 c6;
  check_true "cor 6 more sensitive to delta"
    (Theory.Bounds.corollary6 ~t_mix:3. ~n_points:100 ~delta:2. ~n:50
    > Theory.Bounds.corollary5 ~t_mix:3. ~n_points:100 ~delta:2. ~n:50)

let test_baseline_and_lower () =
  check_close ~eps:1e-9 "baseline" (100. *. log 50.)
    (Theory.Bounds.dimitriou_baseline ~meeting_time:100. ~n:50);
  check_close ~eps:1e-9 "diameter lower" 7. (Theory.Bounds.lower_bound_diameter 7);
  check_close ~eps:1e-9 "speed lower" 5. (Theory.Bounds.lower_bound_speed ~l:10. ~v:2.);
  check_close ~eps:1e-9 "propagation lower" 2.5
    (Theory.Bounds.lower_bound_propagation ~l:10. ~r:2. ~v:2.)

let test_log_powers () =
  check_close ~eps:1e-12 "log2n" (log 100. ** 2.) (Theory.Bounds.log2n 100);
  check_close ~eps:1e-12 "log3n" (log 100. ** 3.) (Theory.Bounds.log3n 100)

let q_bounds_positive =
  qtest ~count:100 "all bounds positive on sane inputs"
    QCheck2.Gen.(triple (int_range 2 10_000) (float_range 0.001 1.) (float_range 1. 10.))
    (fun (n, alpha, beta) ->
      Theory.Bounds.theorem1 ~m:1. ~alpha ~beta ~n > 0.
      && Theory.Bounds.theorem3 ~t_mix:1. ~p_nm:alpha ~eta:beta ~n > 0.
      && Theory.Bounds.edge_meg_eq2 ~n ~p:alpha > 0.)

(* --- Iid_flooding --- *)

let test_iid_join_probability () =
  check_close ~eps:1e-12 "k=1" 0.3 (Theory.Iid_flooding.join_probability ~alpha:0.3 ~informed:1);
  check_close ~eps:1e-12 "k=2" 0.51 (Theory.Iid_flooding.join_probability ~alpha:0.3 ~informed:2);
  check_close ~eps:1e-12 "alpha=1" 1. (Theory.Iid_flooding.join_probability ~alpha:1. ~informed:1)

let test_iid_step_distribution_sums () =
  let dist = Theory.Iid_flooding.step_distribution ~n:20 ~alpha:0.15 ~informed:7 in
  check_close ~eps:1e-9 "distribution sums to 1" 1. (Array.fold_left ( +. ) 0. dist);
  for j = 0 to 6 do
    check_close "no mass below k" 0. dist.(j)
  done

let test_iid_expected_time_two_nodes () =
  (* n = 2: the single missing node joins with probability alpha per
     step, so expected time = 1/alpha exactly (geometric). *)
  check_close ~eps:1e-9 "1/alpha" 4. (Theory.Iid_flooding.expected_time ~n:2 ~alpha:0.25);
  check_close ~eps:1e-9 "alpha=1 instant" 1. (Theory.Iid_flooding.expected_time ~n:2 ~alpha:1.)

let test_iid_expected_time_complete () =
  (* alpha = 1: every snapshot is K_n, flooding takes exactly 1 step. *)
  check_close ~eps:1e-9 "K_n one step" 1. (Theory.Iid_flooding.expected_time ~n:50 ~alpha:1.)

let test_iid_expected_time_monotone () =
  let t1 = Theory.Iid_flooding.expected_time ~n:64 ~alpha:0.02 in
  let t2 = Theory.Iid_flooding.expected_time ~n:64 ~alpha:0.08 in
  check_true "denser is faster" (t2 < t1);
  check_true "alpha 0 never floods"
    (Theory.Iid_flooding.expected_time ~n:3 ~alpha:0. = infinity)

let test_iid_from_full () =
  check_close "already done" 0. (Theory.Iid_flooding.expected_time_from ~n:10 ~alpha:0.3 ~informed:10)

let test_iid_matches_simulation () =
  (* The anchor test: edge-MEG with p + q = 1 has i.i.d. G(n, p)
     snapshots, so measured flooding must match the exact expectation. *)
  let n = 64 in
  let alpha = 3. /. float_of_int n in
  let exact = Theory.Iid_flooding.expected_time ~n ~alpha in
  let dyn () = Edge_meg.Classic.make ~n ~p:alpha ~q:(1. -. alpha) () in
  let s = Core.Flooding.mean_time ~rng:(rng_of_seed 60) ~trials:300 dyn in
  check_close_rel ~rel:0.05 "simulation matches exact expectation" exact
    (Stats.Summary.mean s)

let suites =
  [
    ( "theory.iid_flooding",
      [
        Alcotest.test_case "join probability" `Quick test_iid_join_probability;
        Alcotest.test_case "step distribution" `Quick test_iid_step_distribution_sums;
        Alcotest.test_case "two nodes geometric" `Quick test_iid_expected_time_two_nodes;
        Alcotest.test_case "complete graph" `Quick test_iid_expected_time_complete;
        Alcotest.test_case "monotone in alpha" `Quick test_iid_expected_time_monotone;
        Alcotest.test_case "from full set" `Quick test_iid_from_full;
        Alcotest.test_case "matches simulation (anchor)" `Quick test_iid_matches_simulation;
      ] );
    ( "theory",
      [
        Alcotest.test_case "theorem 1 monotone" `Quick test_theorem1_monotonicity;
        Alcotest.test_case "theorem 1 value" `Quick test_theorem1_value;
        Alcotest.test_case "theorem 3 value" `Quick test_theorem3_value;
        Alcotest.test_case "eq 2 properties" `Quick test_eq2_properties;
        Alcotest.test_case "edge-MEG general value" `Quick test_edge_meg_general_value;
        Alcotest.test_case "corollary 4 specialisation" `Quick test_corollary4_terms;
        Alcotest.test_case "corollary 5 vs 6" `Quick test_corollary5_vs_6;
        Alcotest.test_case "baseline and lower bounds" `Quick test_baseline_and_lower;
        Alcotest.test_case "log powers" `Quick test_log_powers;
        q_bounds_positive;
      ] );
  ]
