open Helpers

(* Cross-process sharded execution: the Spec codec, the checkpoint
   journal, and end-to-end fleet runs against real forked workers (the
   dyngraph CLI in `worker` mode — declared as a dep in test/dune, so
   it exists at ../bin/ relative to the test's cwd). *)

let worker_command = [| "../bin/dyngraph_cli.exe"; "worker" |]

(* Every fleet test resets the engine's global fleet configuration on
   the way out so tests stay order-independent. *)
let with_fleet f =
  Exec.set_worker_command (Some worker_command);
  Fun.protect
    ~finally:(fun () ->
      Exec.set_worker_command None;
      Exec.set_journal None;
      Exec.set_worker_timeout None;
      Unix.putenv "DYNGRAPH_FLEET_CRASH" "";
      Unix.putenv "DYNGRAPH_FLEET_HANG" "")
    f

(* --- Spec.Buf codec --- *)

module B = Exec.Spec.Buf

let test_codec_roundtrip () =
  let b = Buffer.create 64 in
  let ints = [ 0; 1; -1; 42; max_int; min_int ] in
  List.iter (B.add_int b) ints;
  let floats = [ 0.; -0.; 1.5; -3.25e10; infinity; neg_infinity; 1e-300 ] in
  List.iter (B.add_float b) floats;
  let strings = [ ""; "abc"; "\x00\xffbinary\nframed" ] in
  List.iter (B.add_string b) strings;
  let pairs = [ ("flood.rounds", 17); ("rng.splits", 123456789) ] in
  B.add_pairs b pairs;
  let r = B.reader (Buffer.contents b) in
  List.iter (fun v -> Alcotest.(check int) "int" v (B.int r)) ints;
  List.iter
    (fun v ->
      Alcotest.(check int64) "float bits" (Int64.bits_of_float v)
        (Int64.bits_of_float (B.float r)))
    floats;
  List.iter (fun v -> Alcotest.(check string) "string" v (B.string r)) strings;
  Alcotest.(check (list (pair string int))) "pairs" pairs (B.pairs r);
  check_true "consumed everything" (B.at_end r)

let test_codec_truncation () =
  let b = Buffer.create 16 in
  B.add_string b "hello";
  let raw = Buffer.contents b in
  let r = B.reader (String.sub raw 0 (String.length raw - 2)) in
  check_true "truncated string raises Corrupt"
    (try
       ignore (B.string r);
       false
     with B.Corrupt _ -> true);
  (* A declared length far past the end must also be caught (it would
     otherwise wrap the bounds check). *)
  let b = Buffer.create 16 in
  B.add_int b max_int;
  let r = B.reader (Buffer.contents b ^ "x") in
  check_true "absurd length raises Corrupt"
    (try
       ignore (B.string r);
       false
     with B.Corrupt _ -> true)

(* --- checkpoint journal --- *)

let entry_triples entries =
  List.map (fun (e : Exec.Journal.entry) -> (e.job, e.spec_id, e.data)) entries

let with_temp_journal f =
  let path = Filename.temp_file "dyngraph_journal" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal @@ fun path ->
  let t, entries = Exec.Journal.open_ ~path ~jobs:3 ~digest:"d1" in
  Alcotest.(check int) "fresh journal has no entries" 0 (List.length entries);
  Exec.Journal.append t ~job:2 ~spec_id:"E3" ~data:"payload-two";
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"payload-zero\x00binary";
  Exec.Journal.close t;
  let t, entries = Exec.Journal.open_ ~path ~jobs:3 ~digest:"d1" in
  Exec.Journal.close t;
  Alcotest.(check (list (triple int string string)))
    "entries replay in append order"
    [ (2, "E3", "payload-two"); (0, "E1", "payload-zero\x00binary") ]
    (entry_triples entries)

let test_journal_torn_tail () =
  with_temp_journal @@ fun path ->
  let t, _ = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"good";
  Exec.Journal.close t;
  (* Simulate a SIGKILL mid-append: raw garbage after the last frame. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x00\x00\x00\x00\x00\x00\x00\x29torn-frame-with";
  close_out oc;
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Alcotest.(check (list (triple int string string)))
    "torn tail truncated, good frames kept"
    [ (0, "E1", "good") ]
    (entry_triples entries);
  (* The journal is usable after recovery: appends land after the
     truncation point and survive another reopen. *)
  Exec.Journal.append t ~job:1 ~spec_id:"E2" ~data:"after-recovery";
  Exec.Journal.close t;
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.close t;
  Alcotest.(check int) "both entries after recovery" 2 (List.length entries)

(* Clean resume compacts: duplicate shard frames (worker crash re-runs)
   and torn tails are rewritten away, first write per job wins, and the
   rewritten file both shrinks and still resumes. *)
let test_journal_compaction () =
  with_temp_journal @@ fun path ->
  let t, _ = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"first-write";
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"duplicate-after-crash";
  Exec.Journal.append t ~job:7 ~spec_id:"E9" ~data:"out-of-range";
  Exec.Journal.append t ~job:1 ~spec_id:"E2" ~data:"second";
  Exec.Journal.close t;
  let dirty_size = (Unix.stat path).Unix.st_size in
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.close t;
  Alcotest.(check (list (triple int string string)))
    "only live entries survive"
    [ (0, "E1", "first-write"); (1, "E2", "second") ]
    (entry_triples entries);
  let compact_size = (Unix.stat path).Unix.st_size in
  check_true "compaction reclaimed dead frames" (compact_size < dirty_size);
  (* The rewritten file is a well-formed journal: resuming again finds
     the same entries and, being clean now, rewrites nothing. *)
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.close t;
  Alcotest.(check int) "compacted journal resumes" 2 (List.length entries);
  Alcotest.(check int) "clean resume left the file alone" compact_size
    (Unix.stat path).Unix.st_size

let test_journal_compaction_torn_tail () =
  with_temp_journal @@ fun path ->
  let t, _ = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"good";
  Exec.Journal.close t;
  let clean_size = (Unix.stat path).Unix.st_size in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x00\x00\x00\x00\x00\x00\x00\x29torn-frame-with";
  close_out oc;
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.close t;
  Alcotest.(check int) "good frame kept" 1 (List.length entries);
  Alcotest.(check int) "torn tail compacted away" clean_size ((Unix.stat path).Unix.st_size)

let test_journal_plan_mismatch () =
  with_temp_journal @@ fun path ->
  let t, _ = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d1" in
  Exec.Journal.append t ~job:0 ~spec_id:"E1" ~data:"stale";
  Exec.Journal.close t;
  (* A different digest (other seed / scale / experiment set) must
     discard the journal rather than resume mixed shards. *)
  let t, entries = Exec.Journal.open_ ~path ~jobs:2 ~digest:"d2" in
  Exec.Journal.close t;
  Alcotest.(check int) "mismatched journal discarded" 0 (List.length entries)

(* --- end-to-end fleet runs --- *)

let quick = Simulate.Runner.Quick

let render_outputs results =
  String.concat "" (List.map (fun (o : Simulate.Registry.outcome) -> o.output) results)

let sequential_bytes seed =
  render_outputs
    (Simulate.Registry.run_each ~sched:Exec.sequential ~rng:(rng_of_seed seed) ~scale:quick ())

let fleet_bytes ~procs seed =
  render_outputs
    (Simulate.Registry.run_each ~sched:(Exec.procs procs)
       ~spec:(Simulate.Fleet.specs ~render:Simulate.Registry.Full ~seed ~scale:quick ~jobs:1)
       ~rng:(rng_of_seed seed) ~scale:quick ())

let test_fleet_byte_identity () =
  with_fleet @@ fun () ->
  let seq = sequential_bytes 42 in
  check_true "rendered something" (String.length seq > 2_000);
  Alcotest.(check string) "procs 2 = sequential" seq (fleet_bytes ~procs:2 42)

let test_fleet_journal_resume () =
  with_fleet @@ fun () ->
  with_temp_journal @@ fun path ->
  let seq = sequential_bytes 7 in
  Exec.set_journal (Some path);
  Alcotest.(check string) "journaled fleet run = sequential" seq (fleet_bytes ~procs:2 7);
  (* Every shard is now in the journal: a resumed run must not need
     workers at all. An unspawnable worker command proves it — if any
     shard were recomputed, the run would fail. *)
  Exec.set_worker_command (Some [| "/nonexistent/dyngraph-worker"; "worker" |]);
  Alcotest.(check string) "resume replays entirely from journal" seq (fleet_bytes ~procs:2 7)

let test_fleet_crash_isolation () =
  with_fleet @@ fun () ->
  let seq = sequential_bytes 42 in
  let marker = Filename.temp_file "dyngraph_crash" ".marker" in
  Sys.remove marker;
  Fun.protect ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
  @@ fun () ->
  (* The first worker handed E5 exits hard (code 70) before responding;
     only that shard may be re-run, and the merged output must not
     change. The marker file both makes the fault one-shot and proves
     the crash actually happened. *)
  Unix.putenv "DYNGRAPH_FLEET_CRASH" ("E5:" ^ marker);
  Alcotest.(check string) "output identical despite worker crash" seq (fleet_bytes ~procs:3 42);
  check_true "the injected crash fired" (Sys.file_exists marker)

let test_fleet_timeout_rerun () =
  with_fleet @@ fun () ->
  let seq = sequential_bytes 42 in
  let marker = Filename.temp_file "dyngraph_hang" ".marker" in
  Sys.remove marker;
  Fun.protect ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
  @@ fun () ->
  (* The first worker handed E2 wedges; the parent must SIGKILL it at
     the 1 s budget and re-run the shard on a fresh worker. *)
  Unix.putenv "DYNGRAPH_FLEET_HANG" ("E2:" ^ marker);
  Exec.set_worker_timeout (Some 1.0);
  Alcotest.(check string) "output identical despite wedged worker" seq (fleet_bytes ~procs:2 42);
  check_true "the injected hang fired" (Sys.file_exists marker)

let test_fleet_worker_exception () =
  with_fleet @@ fun () ->
  (* A spec id the worker-side dispatcher rejects: the worker answers
     with an error frame and the parent fails the plan (matching the
     in-process semantics of a raising job), rather than hanging or
     silently dropping the shard. *)
  let bogus i =
    let good = Simulate.Fleet.specs ~render:Simulate.Registry.Full ~seed:1 ~scale:quick ~jobs:1 i in
    if i = 3 then { good with Exec.Spec.id = "E99" } else good
  in
  check_true "worker-side exception fails the plan"
    (try
       ignore
         (Simulate.Registry.run_each ~sched:(Exec.procs 2) ~spec:bogus ~rng:(rng_of_seed 1)
            ~scale:quick ());
       false
     with Exec.Fleet_failure _ -> true)

(* --- env parsing (the warn-once satellite) --- *)

let test_env_parsing () =
  let saved_jobs = Sys.getenv_opt "DYNGRAPH_JOBS" in
  let saved_procs = Sys.getenv_opt "DYNGRAPH_PROCS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DYNGRAPH_JOBS" (Option.value ~default:"" saved_jobs);
      Unix.putenv "DYNGRAPH_PROCS" (Option.value ~default:"" saved_procs))
  @@ fun () ->
  Unix.putenv "DYNGRAPH_JOBS" "notanumber";
  Alcotest.(check int) "unparsable DYNGRAPH_JOBS ignored" 1 (Exec.workers (Exec.default ()));
  Unix.putenv "DYNGRAPH_JOBS" "3";
  Alcotest.(check int) "parsable DYNGRAPH_JOBS honoured" 3 (Exec.workers (Exec.default ()));
  Unix.putenv "DYNGRAPH_PROCS" "z9";
  Alcotest.(check int) "unparsable DYNGRAPH_PROCS is 0" 0 (Exec.default_procs ());
  Unix.putenv "DYNGRAPH_PROCS" "4";
  Alcotest.(check int) "parsable DYNGRAPH_PROCS honoured" 4 (Exec.default_procs ())

let suites =
  [
    ( "fleet.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "truncation" `Quick test_codec_truncation;
      ] );
    ( "fleet.journal",
      [
        Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
        Alcotest.test_case "torn tail recovery" `Quick test_journal_torn_tail;
        Alcotest.test_case "compaction on clean resume" `Quick test_journal_compaction;
        Alcotest.test_case "compaction reclaims torn tail" `Quick
          test_journal_compaction_torn_tail;
        Alcotest.test_case "plan mismatch discards" `Quick test_journal_plan_mismatch;
      ] );
    ( "fleet.procs",
      [
        Alcotest.test_case "byte identity, procs 2, seed 42" `Slow test_fleet_byte_identity;
        Alcotest.test_case "journal checkpoint and resume" `Slow test_fleet_journal_resume;
        Alcotest.test_case "crash isolation" `Slow test_fleet_crash_isolation;
        Alcotest.test_case "timeout re-run" `Slow test_fleet_timeout_rerun;
        Alcotest.test_case "worker exception fails plan" `Slow test_fleet_worker_exception;
      ] );
    ( "fleet.env",
      [ Alcotest.test_case "DYNGRAPH_JOBS / DYNGRAPH_PROCS parsing" `Quick test_env_parsing ] );
  ]
