open Helpers

(* --- rotating star --- *)

let test_star_snapshot_shape () =
  let dyn = Adversarial.Model.rotating_star ~n:6 in
  Core.Dynamic.reset dyn (rng_of_seed 1);
  let g = Core.Dynamic.snapshot_graph dyn in
  Alcotest.(check int) "star edges" 5 (Graph.Static.m g);
  check_true "connected" (Graph.Traverse.is_connected g);
  Alcotest.(check int) "diameter 2" 2 (Graph.Traverse.diameter g);
  (* Centre at t=0 is node 1. *)
  Alcotest.(check int) "centre degree" 5 (Graph.Static.degree g 1)

let test_star_flooding_exactly_linear () =
  let n = 20 in
  let dyn = Adversarial.Model.rotating_star ~n in
  let r = Core.Flooding.run ~rng:(rng_of_seed 2) ~source:0 dyn in
  Alcotest.(check (option int)) "exactly n-1 rounds" (Some (n - 1)) r.time;
  (* One new node per round. *)
  Array.iteri (fun t size -> Alcotest.(check int) "one per round" (t + 1) size) r.trajectory

let test_star_other_source_is_fast () =
  (* The construction is worst for source 0; from source 1 (the first
     centre) everyone learns immediately. *)
  let dyn = Adversarial.Model.rotating_star ~n:20 in
  let r = Core.Flooding.run ~rng:(rng_of_seed 3) ~source:1 dyn in
  Alcotest.(check (option int)) "first centre floods instantly" (Some 1) r.time

(* --- rotating matching --- *)

let test_rotating_matching_validation () =
  check_true "non power of two rejected"
    (try
       ignore (Adversarial.Model.rotating_matching ~n:12);
       false
     with Invalid_argument _ -> true)

let test_rotating_matching_floods_in_log () =
  let n = 32 in
  let dyn = Adversarial.Model.rotating_matching ~n in
  let r = Core.Flooding.run ~rng:(rng_of_seed 4) ~source:0 dyn in
  Alcotest.(check (option int)) "exactly log2 n" (Some 5) r.time;
  Array.iteri (fun t size -> Alcotest.(check int) "doubles" (1 lsl t) size) r.trajectory

let test_rotating_matching_degree_one () =
  let dyn = Adversarial.Model.rotating_matching ~n:16 in
  Core.Dynamic.reset dyn (rng_of_seed 5);
  for _ = 1 to 6 do
    let g = Core.Dynamic.snapshot_graph dyn in
    Alcotest.(check int) "perfect matching" 8 (Graph.Static.m g);
    Alcotest.(check int) "max degree 1" 1 (Graph.Static.max_degree g);
    Core.Dynamic.step dyn
  done

(* --- random matching --- *)

let test_random_matching_shape () =
  let dyn = Adversarial.Model.random_matching ~rng_hint:() ~n:10 in
  Core.Dynamic.reset dyn (rng_of_seed 6);
  for _ = 1 to 10 do
    let g = Core.Dynamic.snapshot_graph dyn in
    Alcotest.(check int) "5 pairs" 5 (Graph.Static.m g);
    Alcotest.(check int) "degree exactly 1" 1 (Graph.Static.min_degree g);
    Core.Dynamic.step dyn
  done

let test_random_matching_odd_n () =
  let dyn = Adversarial.Model.random_matching ~rng_hint:() ~n:7 in
  Core.Dynamic.reset dyn (rng_of_seed 7);
  let g = Core.Dynamic.snapshot_graph dyn in
  Alcotest.(check int) "3 pairs, one lonely" 3 (Graph.Static.m g)

let test_random_matching_floods_logarithmically () =
  let n = 64 in
  let dyn () = Adversarial.Model.random_matching ~rng_hint:() ~n in
  let s = Core.Flooding.mean_time ~rng:(rng_of_seed 8) ~trials:10 dyn in
  check_true "O(log n)-ish" (Stats.Summary.mean s < 30.);
  check_true "at least log2 n" (Stats.Summary.min s >= 6.)

(* --- interval connectivity --- *)

let path_snapshot n = List.init (n - 1) (fun i -> (i, i + 1))

let test_interval_static_path () =
  let n = 5 in
  let snaps = [ path_snapshot n; path_snapshot n; path_snapshot n ] in
  check_true "static path is 3-interval connected"
    (Adversarial.Interval.windows_connected ~n snaps ~t:3);
  Alcotest.(check int) "max interval = window" 3 (Adversarial.Interval.max_interval ~n snaps)

let test_interval_alternating () =
  (* Two path snapshots sharing no edges: each is connected (t=1 holds)
     but their intersection is empty (t=2 fails). *)
  let n = 3 in
  let a = [ (0, 1); (1, 2) ] and b = [ (0, 2); (1, 2) ] in
  let snaps = [ a; b; a; b ] in
  check_true "1-interval connected" (Adversarial.Interval.windows_connected ~n snaps ~t:1);
  check_true "not 2-interval connected"
    (not (Adversarial.Interval.windows_connected ~n snaps ~t:2));
  Alcotest.(check int) "max interval 1" 1 (Adversarial.Interval.max_interval ~n snaps)

let test_interval_disconnected () =
  let n = 4 in
  let snaps = [ [ (0, 1) ]; [ (2, 3) ] ] in
  Alcotest.(check int) "even t=1 fails" 0 (Adversarial.Interval.max_interval ~n snaps)

let test_interval_validation () =
  check_true "t too large raises"
    (try
       ignore (Adversarial.Interval.windows_connected ~n:3 [ [ (0, 1) ] ] ~t:2);
       false
     with Invalid_argument _ -> true)

let test_record_star () =
  let dyn = Adversarial.Model.rotating_star ~n:5 in
  let snaps = Adversarial.Interval.record dyn ~rng:(rng_of_seed 9) ~steps:4 in
  Alcotest.(check int) "recorded 4" 4 (List.length snaps);
  (* Rotating star: every snapshot connected, consecutive intersections
     share only the two centres' mutual edge — not spanning. *)
  Alcotest.(check int) "max interval 1" 1 (Adversarial.Interval.max_interval ~n:5 snaps)

let test_meg_not_interval_connected () =
  let dyn = Edge_meg.Classic.make ~n:32 ~p:(1.5 /. 32.) ~q:0.5 () in
  let snaps = Adversarial.Interval.record dyn ~rng:(rng_of_seed 10) ~steps:6 in
  Alcotest.(check int) "sparse MEG is 0-interval connected" 0
    (Adversarial.Interval.max_interval ~n:32 snaps)

let suites =
  [
    ( "adversarial.models",
      [
        Alcotest.test_case "star snapshot shape" `Quick test_star_snapshot_shape;
        Alcotest.test_case "star floods in n-1" `Quick test_star_flooding_exactly_linear;
        Alcotest.test_case "star easy source" `Quick test_star_other_source_is_fast;
        Alcotest.test_case "rotating matching validation" `Quick
          test_rotating_matching_validation;
        Alcotest.test_case "rotating matching log2 n" `Quick
          test_rotating_matching_floods_in_log;
        Alcotest.test_case "rotating matching degree 1" `Quick
          test_rotating_matching_degree_one;
        Alcotest.test_case "random matching shape" `Quick test_random_matching_shape;
        Alcotest.test_case "random matching odd n" `Quick test_random_matching_odd_n;
        Alcotest.test_case "random matching floods" `Quick
          test_random_matching_floods_logarithmically;
      ] );
    ( "adversarial.interval",
      [
        Alcotest.test_case "static path" `Quick test_interval_static_path;
        Alcotest.test_case "alternating paths" `Quick test_interval_alternating;
        Alcotest.test_case "disconnected" `Quick test_interval_disconnected;
        Alcotest.test_case "validation" `Quick test_interval_validation;
        Alcotest.test_case "record rotating star" `Quick test_record_star;
        Alcotest.test_case "sparse MEG not interval connected" `Quick
          test_meg_not_interval_connected;
      ] );
  ]
