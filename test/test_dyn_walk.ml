open Helpers

let static g = Core.Dynamic.of_static g

let test_hitting_self () =
  let dyn = static (Graph.Builders.cycle 6) in
  Alcotest.(check (option int)) "hit start immediately" (Some 0)
    (Core.Dyn_walk.hitting_time ~rng:(rng_of_seed 1) ~start:2 ~target:2 dyn)

let test_hitting_two_nodes () =
  let dyn = static (Graph.Static.of_edges ~n:2 [ (0, 1) ]) in
  match Core.Dyn_walk.hitting_time ~hold:0. ~rng:(rng_of_seed 2) ~start:0 ~target:1 dyn with
  | Some t -> Alcotest.(check int) "deterministic hop" 1 t
  | None -> Alcotest.fail "did not hit"

let test_hitting_unreachable () =
  let dyn = static (Graph.Static.of_edges ~n:3 [ (0, 1) ]) in
  Alcotest.(check (option int)) "unreachable target" None
    (Core.Dyn_walk.hitting_time ~cap:200 ~rng:(rng_of_seed 3) ~start:0 ~target:2 dyn)

let test_cover_complete () =
  let dyn = static (Graph.Builders.complete 10) in
  match Core.Dyn_walk.cover_time ~rng:(rng_of_seed 4) ~start:0 dyn with
  | Some t -> check_true "coupon-collector scale" (t >= 9 && t < 2000)
  | None -> Alcotest.fail "cover on K10 failed"

let test_cover_single_node () =
  let dyn = static (Graph.Static.of_edges ~n:1 []) in
  Alcotest.(check (option int)) "trivial cover" (Some 0)
    (Core.Dyn_walk.cover_time ~rng:(rng_of_seed 5) ~start:0 dyn)

let test_walk_on_dynamic_uses_snapshots () =
  (* Two nodes, edge present only every other step: the non-lazy walk
     must wait for the edge. Schedule: no edge at t=0, edge at t=1. *)
  let dyn = Core.Dynamic.of_snapshots ~n:2 [| []; [ (0, 1) ] |] in
  match Core.Dyn_walk.hitting_time ~hold:0. ~rng:(rng_of_seed 6) ~start:0 ~target:1 dyn with
  | Some t -> Alcotest.(check int) "waits for the edge" 2 t
  | None -> Alcotest.fail "did not hit across snapshots"

let test_validation () =
  let dyn = static (Graph.Builders.cycle 4) in
  check_true "bad hold"
    (try
       ignore (Core.Dyn_walk.hitting_time ~hold:1. ~rng:(rng_of_seed 7) ~start:0 ~target:1 dyn);
       false
     with Invalid_argument _ -> true);
  check_true "bad target"
    (try
       ignore (Core.Dyn_walk.hitting_time ~rng:(rng_of_seed 7) ~start:0 ~target:9 dyn);
       false
     with Invalid_argument _ -> true)

let test_mean_cover_on_meg_completes () =
  let dyn () = Edge_meg.Classic.make ~n:24 ~p:(2. /. 24.) ~q:0.5 () in
  let cover = Core.Dyn_walk.mean_cover_time ~cap:20_000 ~rng:(rng_of_seed 8) ~trials:5 dyn in
  check_true "covers a sparse MEG" (cover < 20_000.)

let test_static_sparse_never_covers () =
  (* A two-component static graph can never be covered. *)
  let g = Graph.Static.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  Alcotest.(check (option int)) "disconnected static cover" None
    (Core.Dyn_walk.cover_time ~cap:2000 ~rng:(rng_of_seed 9) ~start:0 (static g))

let q_hitting_symmetric_scale =
  qtest ~count:20 "hitting time bounded on cycles"
    QCheck2.Gen.(pair seed_gen (int_range 3 12))
    (fun (seed, n) ->
      let dyn = static (Graph.Builders.cycle n) in
      match
        Core.Dyn_walk.hitting_time ~cap:100_000 ~rng:(Prng.Rng.of_seed seed) ~start:0
          ~target:(n / 2) dyn
      with
      | Some t -> t <= 100_000
      | None -> false)

let suites =
  [
    ( "core.dyn_walk",
      [
        Alcotest.test_case "hit self" `Quick test_hitting_self;
        Alcotest.test_case "two nodes" `Quick test_hitting_two_nodes;
        Alcotest.test_case "unreachable" `Quick test_hitting_unreachable;
        Alcotest.test_case "cover K10" `Quick test_cover_complete;
        Alcotest.test_case "cover single node" `Quick test_cover_single_node;
        Alcotest.test_case "rides snapshots" `Quick test_walk_on_dynamic_uses_snapshots;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "covers sparse MEG" `Quick test_mean_cover_on_meg_completes;
        Alcotest.test_case "disconnected static never covers" `Quick
          test_static_sparse_never_covers;
        q_hitting_symmetric_scale;
      ] );
  ]
