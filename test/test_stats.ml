open Helpers

(* --- Summary --- *)

let test_summary_known () =
  let s = Stats.Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.Summary.mean s);
  check_close ~eps:1e-9 "variance" (32. /. 7.) (Stats.Summary.variance s);
  check_close "min" 2. (Stats.Summary.min s);
  check_close "max" 9. (Stats.Summary.max s);
  Alcotest.(check int) "count" 8 (Stats.Summary.count s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check_true "empty mean nan" (Float.is_nan (Stats.Summary.mean s));
  check_true "empty variance nan" (Float.is_nan (Stats.Summary.variance s))

let test_summary_single () =
  let s = Stats.Summary.of_array [| 3. |] in
  check_close "mean of single" 3. (Stats.Summary.mean s);
  check_true "variance of single nan" (Float.is_nan (Stats.Summary.variance s))

let q_merge_equals_concat =
  qtest ~count:200 "merge a b = of_array (a @ b)"
    QCheck2.Gen.(pair float_array_gen float_array_gen)
    (fun (a, b) ->
      let merged = Stats.Summary.merge (Stats.Summary.of_array a) (Stats.Summary.of_array b) in
      let direct = Stats.Summary.of_array (Array.append a b) in
      let close x y =
        (Float.is_nan x && Float.is_nan y) || abs_float (x -. y) < 1e-6 *. (1. +. abs_float y)
      in
      Stats.Summary.count merged = Stats.Summary.count direct
      && close (Stats.Summary.mean merged) (Stats.Summary.mean direct)
      && close (Stats.Summary.variance merged) (Stats.Summary.variance direct)
      && close (Stats.Summary.min merged) (Stats.Summary.min direct)
      && close (Stats.Summary.max merged) (Stats.Summary.max direct))

let test_merge_with_empty () =
  let a = Stats.Summary.of_array [| 1.; 2.; 3. |] in
  let e = Stats.Summary.create () in
  let m = Stats.Summary.merge a e in
  check_close "merge with empty keeps mean" 2. (Stats.Summary.mean m);
  Alcotest.(check int) "merge with empty keeps count" 3 (Stats.Summary.count m)

let test_std_error () =
  let s = Stats.Summary.of_array [| 1.; 2.; 3.; 4. |] in
  let expected = Stats.Summary.stddev s /. 2. in
  check_close ~eps:1e-12 "std error" expected (Stats.Summary.std_error s);
  check_close ~eps:1e-12 "ci95" (1.96 *. expected) (Stats.Summary.ci95_half_width s)

(* --- Quantile --- *)

let test_quantile_known () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_close "q0" 1. (Stats.Quantile.quantile xs 0.);
  check_close "q1" 5. (Stats.Quantile.quantile xs 1.);
  check_close "median" 3. (Stats.Quantile.median xs);
  check_close "q25" 2. (Stats.Quantile.quantile xs 0.25);
  check_close "interpolated" 1.5 (Stats.Quantile.quantile xs 0.125)

let test_quantile_unsorted () =
  check_close "median of unsorted" 3. (Stats.Quantile.median [| 5.; 1.; 3.; 2.; 4. |])

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile: empty sample") (fun () ->
      ignore (Stats.Quantile.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Quantile: q outside [0, 1]")
    (fun () -> ignore (Stats.Quantile.quantile [| 1. |] 1.5))

let test_iqr () = check_close "iqr" 2. (Stats.Quantile.iqr [| 1.; 2.; 3.; 4.; 5. |])

(* Regression test: a NaN used to land at an arbitrary rank under the
   polymorphic sort and silently shift every quantile; now it raises. *)
let test_quantile_nan () =
  Alcotest.check_raises "nan rejected" (Invalid_argument "Quantile: NaN in sample") (fun () ->
      ignore (Stats.Quantile.median [| 1.; nan; 3. |]));
  Alcotest.check_raises "of_sorted nan rejected"
    (Invalid_argument "Quantile.of_sorted: NaN in sample") (fun () ->
      ignore (Stats.Quantile.of_sorted [| 1.; 2.; nan |] 0.5))

let q_quantile_monotone =
  qtest ~count:200 "quantile monotone in q"
    QCheck2.Gen.(triple float_array_gen (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, q1, q2) ->
      Array.length xs = 0
      ||
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.Quantile.quantile xs lo <= Stats.Quantile.quantile xs hi +. 1e-9)

let q_quantile_bounds =
  qtest ~count:200 "quantile within [min, max]"
    QCheck2.Gen.(pair float_array_gen (float_range 0. 1.))
    (fun (xs, q) ->
      Array.length xs = 0
      ||
      let v = Stats.Quantile.quantile xs q in
      let mn = Array.fold_left Float.min infinity xs in
      let mx = Array.fold_left Float.max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.5 ];
  Alcotest.(check int) "count" 4 (Stats.Histogram.count h);
  check_close "weight bin 0" 1. (Stats.Histogram.weight h 0);
  check_close "weight bin 1" 2. (Stats.Histogram.weight h 1);
  check_close "weight bin 9" 1. (Stats.Histogram.weight h 9)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Regression test: out-of-range samples used to be clamped into the
   edge bins, inflating their mass; they now accrue to dedicated
   underflow/overflow tallies excluded from the distribution. *)
let test_histogram_outliers () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Stats.Histogram.add h (-5.);
  Stats.Histogram.add h 42.;
  Stats.Histogram.add h 0.6;
  check_close "below counts as underflow" 1. (Stats.Histogram.underflow h);
  check_close "above counts as overflow" 1. (Stats.Histogram.overflow h);
  check_close "first bin untouched" 0. (Stats.Histogram.weight h 0);
  check_close "last bin untouched" 0. (Stats.Histogram.weight h 3);
  Alcotest.(check int) "count includes outliers" 3 (Stats.Histogram.count h);
  check_close "total weight is in-range only" 1. (Stats.Histogram.total_weight h);
  let p = Stats.Histogram.probability h in
  check_close "probability sums over in-range mass" 1. (Array.fold_left ( +. ) 0. p);
  check_close "all in-range mass in bin 2" 1. p.(2);
  Alcotest.(check int) "x = hi belongs to the last bin" 3 (Stats.Histogram.bin_of h 1.);
  Alcotest.check_raises "bin_of rejects out-of-range"
    (Invalid_argument "Histogram.bin_of: sample outside [lo, hi]") (fun () ->
      ignore (Stats.Histogram.bin_of h 2.));
  let rendered = Stats.Histogram.render h in
  check_true "render shows underflow" (contains rendered "below range");
  check_true "render shows overflow" (contains rendered "above range")

let test_histogram_normalisation () =
  let h = Stats.Histogram.create ~lo:0. ~hi:2. ~bins:8 in
  let rng = rng_of_seed 1 in
  for _ = 1 to 1000 do
    Stats.Histogram.add h (Prng.Rng.float rng 2.)
  done;
  let p_total = Array.fold_left ( +. ) 0. (Stats.Histogram.probability h) in
  check_close ~eps:1e-9 "probability sums to 1" 1. p_total;
  let bin_width = 2. /. 8. in
  let d_total =
    Array.fold_left ( +. ) 0. (Stats.Histogram.density h) *. bin_width
  in
  check_close ~eps:1e-9 "density integrates to 1" 1. d_total

let test_histogram_bin_center () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  check_close "center of bin 0" 0.5 (Stats.Histogram.bin_center h 0);
  check_close "center of bin 9" 9.5 (Stats.Histogram.bin_center h 9)

(* --- Regression --- *)

let test_ols_exact_line () =
  let pts = List.map (fun x -> (x, (3. *. x) +. 1.)) [ 0.; 1.; 2.; 5.; 9. ] in
  let f = Stats.Regression.ols pts in
  check_close ~eps:1e-9 "slope" 3. f.slope;
  check_close ~eps:1e-9 "intercept" 1. f.intercept;
  check_close ~eps:1e-9 "r2 of exact fit" 1. f.r2;
  check_close ~eps:1e-9 "predict" 31. (Stats.Regression.predict f 10.)

let test_loglog_exponent () =
  let pts = List.map (fun x -> (x, 2. *. (x ** 1.7))) [ 1.; 2.; 4.; 8.; 16. ] in
  let f = Stats.Regression.loglog pts in
  check_close ~eps:1e-9 "loglog slope recovers exponent" 1.7 f.slope;
  check_close_rel ~rel:1e-6 "predict_loglog" (2. *. (32. ** 1.7))
    (Stats.Regression.predict_loglog f 32.)

let test_loglog_drops_nonpositive () =
  let f = Stats.Regression.loglog [ (-1., 5.); (0., 2.); (1., 1.); (2., 2.); (4., 4.) ] in
  Alcotest.(check int) "kept 3 points" 3 f.n;
  Alcotest.(check int) "reported 2 dropped" 2 f.dropped

(* Regression test: when the non-positive filter emptied the sample the
   error used to be the generic "need at least two points", blaming the
   caller for data the filter removed. *)
let test_loglog_too_few_positive () =
  Alcotest.check_raises "error names the dropped count"
    (Invalid_argument
       "Regression.loglog: need at least two positive points (dropped 2 non-positive of 3)")
    (fun () -> ignore (Stats.Regression.loglog [ (-1., 1.); (0., 1.); (2., 2.) ]));
  check_true "ols reports zero dropped" ((Stats.Regression.ols [ (1., 1.); (2., 2.) ]).dropped = 0)

let test_ols_errors () =
  Alcotest.check_raises "too few" (Invalid_argument "Regression.ols: need at least two points")
    (fun () -> ignore (Stats.Regression.ols [ (1., 1.) ]));
  Alcotest.check_raises "degenerate x"
    (Invalid_argument "Regression.ols: x values are all equal") (fun () ->
      ignore (Stats.Regression.ols [ (1., 1.); (1., 2.) ]))

(* --- Distance --- *)

let test_tv_known () =
  check_close "disjoint" 1. (Stats.Distance.total_variation [| 1.; 0. |] [| 0.; 1. |]);
  check_close "equal" 0. (Stats.Distance.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  check_close "half" 0.5 (Stats.Distance.total_variation [| 1.; 0. |] [| 0.5; 0.5 |])

let q_tv_axioms =
  qtest ~count:200 "TV symmetric, in [0,1], zero iff equal"
    QCheck2.Gen.(triple seed_gen seed_gen (int_range 1 20))
    (fun (s1, s2, len) ->
      let p = prob_vector s1 len and q = prob_vector s2 len in
      let d = Stats.Distance.total_variation p q in
      let d' = Stats.Distance.total_variation q p in
      abs_float (d -. d') < 1e-12
      && d >= 0. && d <= 1. +. 1e-12
      && abs_float (Stats.Distance.total_variation p p) < 1e-12)

let test_kolmogorov () =
  check_close "ks disjoint" 1. (Stats.Distance.kolmogorov [| 1.; 0. |] [| 0.; 1. |]);
  check_close ~eps:1e-12 "ks shifted" 0.25
    (Stats.Distance.kolmogorov [| 0.5; 0.5; 0. |] [| 0.25; 0.5; 0.25 |])

let test_l2_chi2 () =
  check_close ~eps:1e-12 "l2" (sqrt 0.02) (Stats.Distance.l2 [| 0.6; 0.4 |] [| 0.5; 0.5 |]);
  check_close ~eps:1e-12 "chi2" 0.04 (Stats.Distance.chi_square [| 0.6; 0.4 |] [| 0.5; 0.5 |])

let test_normalize () =
  let p = Stats.Distance.normalize [| 1.; 3. |] in
  check_close "normalize" 0.25 p.(0);
  Alcotest.check_raises "zero total" (Invalid_argument "Distance.normalize: zero total")
    (fun () -> ignore (Stats.Distance.normalize [| 0.; 0. |]))

(* --- Bootstrap --- *)

let test_bootstrap_constant () =
  let rng = rng_of_seed 2 in
  let iv = Stats.Bootstrap.ci_mean ~rng [| 5.; 5.; 5.; 5. |] in
  check_close "constant point" 5. iv.point;
  check_close "constant lo" 5. iv.lo;
  check_close "constant hi" 5. iv.hi

(* Regression test: NaN samples used to poison every resample statistic
   and then sort unpredictably into the interval endpoints. *)
let test_bootstrap_nan () =
  let rng = rng_of_seed 5 in
  Alcotest.check_raises "nan rejected" (Invalid_argument "Bootstrap.ci: NaN in sample")
    (fun () -> ignore (Stats.Bootstrap.ci_mean ~rng [| 1.; nan; 3. |]))

let test_bootstrap_ordering () =
  let rng = rng_of_seed 3 in
  let xs = Array.init 50 (fun i -> float_of_int (i mod 7)) in
  let iv = Stats.Bootstrap.ci_mean ~rng xs in
  check_true "lo <= point" (iv.lo <= iv.point +. 1e-9);
  check_true "point <= hi" (iv.point <= iv.hi +. 1e-9)

let test_bootstrap_narrows () =
  let rng = rng_of_seed 4 in
  let noisy n =
    let r = rng_of_seed 99 in
    Array.init n (fun _ -> Prng.Rng.gaussian r)
  in
  let small = Stats.Bootstrap.ci_mean ~rng (noisy 10) in
  let large = Stats.Bootstrap.ci_mean ~rng (noisy 1000) in
  check_true "larger sample narrows CI" (large.hi -. large.lo < small.hi -. small.lo)

(* --- Compare --- *)

let test_welch_identical () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  let r = Stats.Compare.welch a (Array.copy a) in
  check_true "identical samples indistinguishable" (r.verdict = Stats.Compare.Indistinguishable);
  check_close "zero t" 0. r.t_statistic

let test_welch_clear_difference () =
  let rng = rng_of_seed 40 in
  let a = Array.init 40 (fun _ -> 10. +. Prng.Rng.gaussian rng) in
  let b = Array.init 40 (fun _ -> 20. +. Prng.Rng.gaussian rng) in
  let r = Stats.Compare.welch a b in
  check_true "a smaller" (r.verdict = Stats.Compare.A_smaller);
  check_true "negative mean difference" (r.mean_difference < 0.);
  let r' = Stats.Compare.welch b a in
  check_true "b smaller when swapped" (r'.verdict = Stats.Compare.B_smaller)

let test_welch_noise_indistinguishable () =
  let rng = rng_of_seed 41 in
  let a = Array.init 30 (fun _ -> Prng.Rng.gaussian rng) in
  let b = Array.init 30 (fun _ -> Prng.Rng.gaussian rng) in
  check_true "same distribution indistinguishable" (Stats.Compare.equivalent a b)

let test_welch_constant_samples () =
  let r = Stats.Compare.welch [| 3.; 3.; 3. |] [| 3.; 3. |] in
  check_true "equal constants" (r.verdict = Stats.Compare.Indistinguishable);
  let r' = Stats.Compare.welch [| 3.; 3. |] [| 4.; 4. |] in
  check_true "different constants" (r'.verdict = Stats.Compare.A_smaller)

let test_welch_validation () =
  check_true "too small rejected"
    (try
       ignore (Stats.Compare.welch [| 1. |] [| 1.; 2. |]);
       false
     with Invalid_argument _ -> true)

(* --- Table --- *)

let test_table_render () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ Int 1; Text "x" ];
  Stats.Table.add_row t [ Int 23; Text "yy" ];
  let s = Stats.Table.render t in
  check_true "title present" (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check int) "rows" 2 (Stats.Table.n_rows t)

let test_table_arity () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  check_true "arity mismatch raises"
    (try
       Stats.Table.add_row t [ Int 1 ];
       false
     with Invalid_argument _ -> true)

let test_table_csv () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "a"; "text" ] in
  Stats.Table.add_row t [ Int 1; Text "hello, world" ];
  let csv = Stats.Table.to_csv t in
  check_true "header line" (String.length csv >= 6 && String.sub csv 0 6 = "a,text");
  check_true "quoted comma field"
    (String.length csv > 0
    && String.split_on_char '\n' csv |> fun lines ->
       List.exists (fun l -> l = "1,\"hello, world\"") lines)

let test_table_column_floats () =
  let t = Stats.Table.create ~title:"demo" ~columns:[ "x"; "label" ] in
  Stats.Table.add_row t [ Float 1.5; Text "a" ];
  Stats.Table.add_row t [ Int 2; Text "b" ];
  Stats.Table.add_row t [ Missing; Text "c" ];
  let xs = Stats.Table.column_floats t "x" in
  Alcotest.(check int) "two numeric cells" 2 (Array.length xs);
  check_close "first" 1.5 xs.(0);
  check_true "unknown column raises"
    (try
       ignore (Stats.Table.column_floats t "nope");
       false
     with Not_found -> true)

let test_cell_to_string () =
  Alcotest.(check string) "int" "7" (Stats.Table.cell_to_string (Int 7));
  Alcotest.(check string) "fixed" "3.14" (Stats.Table.cell_to_string (Fixed (3.14159, 2)));
  Alcotest.(check string) "missing" "-" (Stats.Table.cell_to_string Missing);
  Alcotest.(check string) "whole float" "12" (Stats.Table.cell_to_string (Float 12.))

let suites =
  [
    ( "stats.summary",
      [
        Alcotest.test_case "known values" `Quick test_summary_known;
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "single" `Quick test_summary_single;
        Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
        Alcotest.test_case "std error" `Quick test_std_error;
        q_merge_equals_concat;
      ] );
    ( "stats.quantile",
      [
        Alcotest.test_case "known values" `Quick test_quantile_known;
        Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted;
        Alcotest.test_case "errors" `Quick test_quantile_errors;
        Alcotest.test_case "iqr" `Quick test_iqr;
        Alcotest.test_case "nan rejected" `Quick test_quantile_nan;
        q_quantile_monotone;
        q_quantile_bounds;
      ] );
    ( "stats.histogram",
      [
        Alcotest.test_case "basic" `Quick test_histogram_basic;
        Alcotest.test_case "outliers" `Quick test_histogram_outliers;
        Alcotest.test_case "normalisation" `Quick test_histogram_normalisation;
        Alcotest.test_case "bin centers" `Quick test_histogram_bin_center;
      ] );
    ( "stats.regression",
      [
        Alcotest.test_case "exact line" `Quick test_ols_exact_line;
        Alcotest.test_case "loglog exponent" `Quick test_loglog_exponent;
        Alcotest.test_case "loglog drops nonpositive" `Quick test_loglog_drops_nonpositive;
        Alcotest.test_case "loglog too few positive" `Quick test_loglog_too_few_positive;
        Alcotest.test_case "errors" `Quick test_ols_errors;
      ] );
    ( "stats.distance",
      [
        Alcotest.test_case "tv known" `Quick test_tv_known;
        Alcotest.test_case "kolmogorov" `Quick test_kolmogorov;
        Alcotest.test_case "l2 chi2" `Quick test_l2_chi2;
        Alcotest.test_case "normalize" `Quick test_normalize;
        q_tv_axioms;
      ] );
    ( "stats.bootstrap",
      [
        Alcotest.test_case "constant data" `Quick test_bootstrap_constant;
        Alcotest.test_case "nan rejected" `Quick test_bootstrap_nan;
        Alcotest.test_case "ordering" `Quick test_bootstrap_ordering;
        Alcotest.test_case "narrows with n" `Quick test_bootstrap_narrows;
      ] );
    ( "stats.compare",
      [
        Alcotest.test_case "identical" `Quick test_welch_identical;
        Alcotest.test_case "clear difference" `Quick test_welch_clear_difference;
        Alcotest.test_case "noise indistinguishable" `Quick test_welch_noise_indistinguishable;
        Alcotest.test_case "constant samples" `Quick test_welch_constant_samples;
        Alcotest.test_case "validation" `Quick test_welch_validation;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity check" `Quick test_table_arity;
        Alcotest.test_case "csv" `Quick test_table_csv;
        Alcotest.test_case "column floats" `Quick test_table_column_floats;
        Alcotest.test_case "cell rendering" `Quick test_cell_to_string;
      ] );
  ]
