open Helpers

let test_determinism () =
  let a = Prng.Rng.of_seed 7 and b = Prng.Rng.of_seed 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Rng.int64 a) (Prng.Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.Rng.of_seed 7 and b = Prng.Rng.of_seed 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.Rng.int64 a) (Prng.Rng.int64 b)) then differs := true
  done;
  check_true "different seeds give different streams" !differs

let test_copy_independent () =
  let a = Prng.Rng.of_seed 3 in
  let b = Prng.Rng.copy a in
  let va = Prng.Rng.int64 a in
  let vb = Prng.Rng.int64 b in
  Alcotest.(check int64) "copy starts at same point" va vb;
  ignore (Prng.Rng.int64 a);
  let va2 = Prng.Rng.int64 a and vb2 = Prng.Rng.int64 b in
  check_true "copies advance independently" (not (Int64.equal va2 vb2) || Int64.equal va2 vb2)

let test_split_distinct () =
  let parent = Prng.Rng.of_seed 11 in
  let child = Prng.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.Rng.int64 parent) (Prng.Rng.int64 child) then incr same
  done;
  check_true "split stream differs from parent" (!same < 3)

let test_substream_repeatable () =
  let base = Prng.Rng.of_seed 5 in
  let s1 = Prng.Rng.substream base 42 and s2 = Prng.Rng.substream base 42 in
  for _ = 1 to 20 do
    Alcotest.(check int64) "substream repeatable" (Prng.Rng.int64 s1) (Prng.Rng.int64 s2)
  done

let test_substream_distinct () =
  let base = Prng.Rng.of_seed 5 in
  let s1 = Prng.Rng.substream base 1 and s2 = Prng.Rng.substream base 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.Rng.int64 s1) (Prng.Rng.int64 s2) then incr same
  done;
  check_true "distinct substreams" (!same < 3)

let test_int_errors () =
  let rng = rng_of_seed 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prng.Rng.int rng 0))

let test_unit_float_range () =
  let rng = rng_of_seed 1 in
  for _ = 1 to 1000 do
    let u = Prng.Rng.unit_float rng in
    check_true "in [0,1)" (u >= 0. && u < 1.)
  done

let test_uniformity_mean () =
  let rng = rng_of_seed 2 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Prng.Rng.unit_float rng)
  done;
  check_close_rel ~rel:0.02 "uniform mean" 0.5 (Stats.Summary.mean s)

let test_bernoulli_extremes () =
  let rng = rng_of_seed 3 in
  for _ = 1 to 100 do
    check_true "p=1 always true" (Prng.Rng.bernoulli rng 1.);
    check_true "p=0 always false" (not (Prng.Rng.bernoulli rng 0.))
  done

let test_geometric_p1 () =
  let rng = rng_of_seed 4 in
  for _ = 1 to 50 do
    Alcotest.(check int) "geometric p=1 is 0" 0 (Prng.Rng.geometric rng 1.)
  done

let test_geometric_mean () =
  let rng = rng_of_seed 5 in
  let p = 0.2 in
  let s = Stats.Summary.create () in
  for _ = 1 to 30_000 do
    Stats.Summary.add s (float_of_int (Prng.Rng.geometric rng p))
  done;
  (* Mean of failures-before-success is (1-p)/p = 4. *)
  check_close_rel ~rel:0.05 "geometric mean" 4.0 (Stats.Summary.mean s)

(* The alias sampler must agree with inversion in distribution across
   its regimes: tabulated (moderate p), tabulated with a wide table
   (small p), and the internal inversion fallback (p below the table
   cutoff). Mean and variance of Geometric(p) are (1-p)/p and
   (1-p)/p^2. *)
let test_geo_alias_moments () =
  List.iter
    (fun (seed, p) ->
      let rng = rng_of_seed seed in
      let geo = Prng.Rng.Geo.make ~p in
      let s = Stats.Summary.create () in
      for _ = 1 to 60_000 do
        let v = Prng.Rng.Geo.draw geo rng in
        check_true "non-negative" (v >= 0);
        Stats.Summary.add s (float_of_int v)
      done;
      let m = (1. -. p) /. p in
      let name what = Printf.sprintf "geo p=%g %s" p what in
      check_close_rel ~rel:0.05 (name "mean") m (Stats.Summary.mean s);
      check_close_rel ~rel:0.1 (name "stddev") (sqrt (m /. p)) (Stats.Summary.stddev s))
    [ (11, 0.5); (12, 0.03125); (13, 1e-3); (14, 1e-6) ]

let test_geo_deterministic () =
  let geo = Prng.Rng.Geo.make ~p:0.1 in
  let draw seed = Array.init 50 (fun _ -> Prng.Rng.Geo.draw geo (rng_of_seed seed)) in
  Alcotest.(check (array int)) "same seed, same stream" (draw 3) (draw 3);
  check_true "different seeds differ" (draw 3 <> draw 4)

let test_geo_errors () =
  let raises p = try ignore (Prng.Rng.Geo.make ~p); false with Invalid_argument _ -> true in
  check_true "p=0 rejected" (raises 0.);
  check_true "p=1 rejected" (raises 1.);
  check_true "p<0 rejected" (raises (-0.5))

let test_exponential_mean () =
  let rng = rng_of_seed 6 in
  let s = Stats.Summary.create () in
  for _ = 1 to 30_000 do
    Stats.Summary.add s (Prng.Rng.exponential rng 2.)
  done;
  check_close_rel ~rel:0.05 "exponential mean 1/rate" 0.5 (Stats.Summary.mean s)

let test_gaussian_moments () =
  let rng = rng_of_seed 7 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Prng.Rng.gaussian rng)
  done;
  check_close ~eps:0.03 "gaussian mean" 0. (Stats.Summary.mean s);
  check_close_rel ~rel:0.05 "gaussian stddev" 1. (Stats.Summary.stddev s)

let q_int_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"int in [0, bound)"
       QCheck2.Gen.(pair Helpers.seed_gen (int_range 1 1_000_000))
       (fun (seed, bound) ->
         let rng = Prng.Rng.of_seed seed in
         let v = Prng.Rng.int rng bound in
         v >= 0 && v < bound))

let q_int_incl_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"int_incl in [lo, hi]"
       QCheck2.Gen.(triple Helpers.seed_gen (int_range (-1000) 1000) (int_range 0 1000))
       (fun (seed, lo, width) ->
         let rng = Prng.Rng.of_seed seed in
         let v = Prng.Rng.int_incl rng lo (lo + width) in
         v >= lo && v <= lo + width))

let q_shuffle_is_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"shuffle preserves multiset"
       QCheck2.Gen.(pair Helpers.seed_gen (array_size (int_range 0 50) (int_range 0 100)))
       (fun (seed, a) ->
         let rng = Prng.Rng.of_seed seed in
         let b = Array.copy a in
         Prng.Rng.shuffle_in_place rng b;
         let sort x =
           let c = Array.copy x in
           Array.sort compare c;
           c
         in
         sort a = sort b))

let q_perm_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"perm is a permutation of 0..n-1"
       QCheck2.Gen.(pair Helpers.seed_gen (int_range 1 100))
       (fun (seed, n) ->
         let rng = Prng.Rng.of_seed seed in
         let p = Prng.Rng.perm rng n in
         let sorted = Array.copy p in
         Array.sort compare sorted;
         sorted = Array.init n (fun i -> i)))

let q_sample_without_replacement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"sample_without_replacement distinct and in range"
       QCheck2.Gen.(
         pair Helpers.seed_gen (int_range 1 200) |> map (fun (s, n) -> (s, n)))
       (fun (seed, n) ->
         let rng = Prng.Rng.of_seed seed in
         let k = Prng.Rng.int rng (n + 1) in
         let s = Prng.Rng.sample_without_replacement rng k n in
         Array.length s = k
         && Array.for_all (fun v -> v >= 0 && v < n) s
         &&
         let sorted = Array.copy s in
         Array.sort compare sorted;
         let distinct = ref true in
         Array.iteri (fun i v -> if i > 0 && v = sorted.(i - 1) then distinct := false) sorted;
         !distinct))

let test_choice_member () =
  let rng = rng_of_seed 9 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    check_true "choice is a member" (Array.exists (( = ) (Prng.Rng.choice rng a)) a)
  done

let test_discrete_matches_weights () =
  let rng = rng_of_seed 10 in
  let w = [| 1.; 2.; 3.; 4. |] in
  let d = Prng.Discrete.of_weights w in
  Alcotest.(check int) "n_outcomes" 4 (Prng.Discrete.n_outcomes d);
  check_close ~eps:1e-12 "prob normalised" 0.1 (Prng.Discrete.prob d 0);
  let counts = Array.make 4 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let i = Prng.Discrete.draw d rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close_rel ~rel:0.05
        (Printf.sprintf "empirical freq of %d" i)
        (w.(i) /. 10.)
        (float_of_int c /. float_of_int trials))
    counts

let test_discrete_point_mass () =
  let rng = rng_of_seed 11 in
  let d = Prng.Discrete.of_weights [| 0.; 1.; 0. |] in
  for _ = 1 to 100 do
    Alcotest.(check int) "point mass" 1 (Prng.Discrete.draw d rng)
  done

let test_discrete_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Discrete.of_weights: empty") (fun () ->
      ignore (Prng.Discrete.of_weights [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Discrete.of_weights: negative weight") (fun () ->
      ignore (Prng.Discrete.of_weights [| 1.; -1.; 3. |]))

let test_cumulative_sampling_agrees () =
  let rng = rng_of_seed 12 in
  let w = [| 5.; 1.; 1.; 3. |] in
  let cdf = Prng.Discrete.cumulative_of_weights w in
  check_close ~eps:1e-12 "cdf ends at 1" 1. cdf.(3);
  let counts = Array.make 4 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let i = Prng.Discrete.draw_cumulative cdf rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close_rel ~rel:0.07
        (Printf.sprintf "inversion freq of %d" i)
        (w.(i) /. 10.)
        (float_of_int c /. float_of_int trials))
    counts

let suites =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_copy_independent;
        Alcotest.test_case "split distinct" `Quick test_split_distinct;
        Alcotest.test_case "substream repeatable" `Quick test_substream_repeatable;
        Alcotest.test_case "substream distinct" `Quick test_substream_distinct;
        Alcotest.test_case "int errors" `Quick test_int_errors;
        Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
        Alcotest.test_case "uniform mean" `Quick test_uniformity_mean;
        Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
        Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
        Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        Alcotest.test_case "geo alias moments" `Quick test_geo_alias_moments;
        Alcotest.test_case "geo deterministic" `Quick test_geo_deterministic;
        Alcotest.test_case "geo errors" `Quick test_geo_errors;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        Alcotest.test_case "choice member" `Quick test_choice_member;
        q_int_bounds;
        q_int_incl_bounds;
        q_shuffle_is_permutation;
        q_perm_valid;
        q_sample_without_replacement;
      ] );
    ( "prng.discrete",
      [
        Alcotest.test_case "matches weights" `Quick test_discrete_matches_weights;
        Alcotest.test_case "point mass" `Quick test_discrete_point_mass;
        Alcotest.test_case "errors" `Quick test_discrete_errors;
        Alcotest.test_case "cumulative agrees" `Quick test_cumulative_sampling_agrees;
      ] );
  ]
