open Helpers

(* The fill_edges contract: for every model, [Dynamic.fill_edges] must
   produce exactly the edge sequence of [Dynamic.iter_edges] — same
   edges, same order, same orientations. Order matters because per-edge
   randomness (Push coins, filter_edges keeps) is drawn in enumeration
   order, so a native fill that reorders would silently change results.

   One builder per model family, sized small and parameterised away
   from degenerate corners (empty snapshots still occur naturally at
   these densities and are covered too). *)

let node_chain =
  Markov.Chain.of_rows
    (Array.init 6 (fun s ->
         Array.append [| ((s + 1) mod 6, 0.7) |] (Array.init 6 (fun t -> (t, 0.05)))))

let node_connect x y =
  let d = abs (x - y) in
  min d (6 - d) <= 1

let grid_family = Random_path.Family.grid_shortest ~rows:4 ~cols:4

let opportunistic_params =
  {
    Edge_meg.Opportunistic.off_short = 2.;
    off_long = 8.;
    off_mix = 0.7;
    on_short = 1.5;
    on_long = 4.;
    on_mix = 0.6;
  }

let builders : (string * (unit -> Core.Dynamic.t)) list =
  [
    ("edge_meg.classic", fun () -> Edge_meg.Classic.make ~n:24 ~p:0.08 ~q:0.4 ());
    ("edge_meg.general", fun () -> Edge_meg.Opportunistic.make ~n:16 opportunistic_params);
    ( "edge_meg.general_direct",
      fun () ->
        let chain =
          Markov.Chain.of_rows (Array.init 4 (fun s -> [| (s, 0.6); ((s + 1) mod 4, 0.4) |]))
        in
        Edge_meg.General.make ~n:14 ~chain ~chi:(fun s -> s >= 2) () );
    ("node_meg", fun () -> Node_meg.Model.make ~n:20 ~chain:node_chain ~connect:node_connect ());
    ( "mobility.waypoint",
      fun () -> Mobility.Waypoint.dynamic ~n:20 ~l:5. ~r:1.4 ~v_min:1. ~v_max:1.25 () );
    ("mobility.random_walk", fun () -> Mobility.Random_walk_model.dynamic ~n:18 ~m:5 ~r:1.1 ());
    ( "mobility.discrete_waypoint",
      fun () -> Mobility.Discrete_waypoint.dynamic ~n:14 (Mobility.Discrete_waypoint.build ~m:4 ~r:1.5) );
    ("random_path", fun () -> Random_path.Rp_model.make ~hold:0.5 ~n:18 ~family:grid_family ());
    ("adversarial.star", fun () -> Adversarial.Model.rotating_star ~n:11);
    ("adversarial.matching", fun () -> Adversarial.Model.rotating_matching ~n:16);
    ("adversarial.random_matching", fun () -> Adversarial.Model.random_matching ~rng_hint:() ~n:12);
    ("of_static", fun () -> Core.Dynamic.of_static (Graph.Builders.augmented_grid ~rows:3 ~cols:4 ~k:2));
    ( "of_snapshots",
      fun () ->
        Core.Dynamic.of_snapshots ~n:5 [| [ (0, 1); (2, 3) ]; []; [ (1, 4); (0, 2); (3, 4) ] |] );
    ( "filter_edges",
      fun () ->
        Core.Dynamic.filter_edges ~p_keep:0.4 (Core.Dynamic.of_static (Graph.Builders.complete 12)) );
    ( "subsample",
      fun () -> Core.Dynamic.subsample ~every:3 (Edge_meg.Classic.make ~n:16 ~p:0.1 ~q:0.5 ()) );
    ( "union",
      fun () ->
        Core.Dynamic.union (Adversarial.Model.rotating_star ~n:10)
          (Edge_meg.Classic.make ~n:10 ~p:0.15 ~q:0.5 ()) );
  ]

let collect_iter g =
  let acc = ref [] in
  Core.Dynamic.iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let test_fill_matches_iter (name, build) () =
  let buf = Graph.Edge_buffer.create () in
  List.iter
    (fun seed ->
      let g = build () in
      Core.Dynamic.reset g (rng_of_seed seed);
      for step = 0 to 4 do
        (* iter first, fill second: for filter_edges this also pins the
           coin cache (first enumeration draws, the second replays). *)
        let via_iter = collect_iter g in
        Core.Dynamic.fill_edges g buf;
        let via_fill = Graph.Edge_buffer.to_list buf in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s seed=%d step=%d" name seed step)
          via_iter via_fill;
        (* And the other way round on the same snapshot: a fill must not
           perturb the snapshot or the iteration. *)
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "%s seed=%d step=%d (re-iter)" name seed step)
          via_fill (collect_iter g);
        Core.Dynamic.step g
      done)
    [ 1; 5; 9 ]

(* fill_edges alone (without a prior iter) must draw the same filter
   coins that an iter would have: run two copies of the same filtered
   process, one enumerated only through fill, one only through iter. *)
let test_filter_fill_only () =
  let make () =
    Core.Dynamic.filter_edges ~p_keep:0.4 (Core.Dynamic.of_static (Graph.Builders.complete 12))
  in
  let a = make () and b = make () in
  Core.Dynamic.reset a (rng_of_seed 3);
  Core.Dynamic.reset b (rng_of_seed 3);
  let buf = Graph.Edge_buffer.create () in
  for step = 0 to 4 do
    Core.Dynamic.fill_edges a buf;
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "fill-only = iter-only, step %d" step)
      (collect_iter b) (Graph.Edge_buffer.to_list buf);
    Core.Dynamic.step a;
    Core.Dynamic.step b
  done

let test_filter_before_reset_raises () =
  let g =
    Core.Dynamic.filter_edges ~p_keep:0.5 (Core.Dynamic.of_static (Graph.Builders.cycle 6))
  in
  check_true "iter_edges before reset raises"
    (try
       Core.Dynamic.iter_edges g (fun _ _ -> ());
       false
     with Invalid_argument _ -> true);
  check_true "fill_edges before reset raises"
    (try
       Core.Dynamic.fill_edges g (Graph.Edge_buffer.create ());
       false
     with Invalid_argument _ -> true);
  (* After a reset the same value works. *)
  Core.Dynamic.reset g (rng_of_seed 1);
  Core.Dynamic.iter_edges g (fun _ _ -> ())

let test_public_fill_clears () =
  let g = Core.Dynamic.of_static (Graph.Builders.cycle 4) in
  Core.Dynamic.reset g (rng_of_seed 1);
  let buf = Graph.Edge_buffer.create () in
  Graph.Edge_buffer.push buf 99 100;
  Core.Dynamic.fill_edges g buf;
  Alcotest.(check int) "stale contents dropped" 4 (Graph.Edge_buffer.length buf)

let suites =
  [
    ( "core.fill_edges",
      List.map
        (fun (name, build) ->
          Alcotest.test_case (name ^ " fill = iter") `Quick (test_fill_matches_iter (name, build)))
        builders
      @ [
          Alcotest.test_case "filter: fill-only = iter-only" `Quick test_filter_fill_only;
          Alcotest.test_case "filter: pre-reset raises" `Quick test_filter_before_reset_raises;
          Alcotest.test_case "public fill clears buffer" `Quick test_public_fill_clears;
        ] );
  ]
