open Helpers

(* --- scheduler construction --- *)

let test_workers () =
  Alcotest.(check int) "sequential" 1 (Exec.workers Exec.sequential);
  Alcotest.(check int) "pool 1 is sequential" 1 (Exec.workers (Exec.pool 1));
  Alcotest.(check int) "pool 3" 3 (Exec.workers (Exec.pool 3));
  check_true "pool clamps huge requests" (Exec.workers (Exec.pool 10_000) <= 10_000);
  check_true "pool 0 rejected"
    (try
       ignore (Exec.pool 0);
       false
     with Invalid_argument _ -> true)

let test_of_int () =
  Alcotest.(check int) "of_int 0" 1 (Exec.workers (Exec.of_int 0));
  Alcotest.(check int) "of_int -3" 1 (Exec.workers (Exec.of_int (-3)));
  Alcotest.(check int) "of_int 2" 2 (Exec.workers (Exec.of_int 2))

(* --- plan execution --- *)

let square_plan n =
  Exec.plan ~jobs:n ~job:(fun i -> i * i) ~reduce:(fun a -> Array.to_list a)

(* Results must land at their job's index no matter which domain ran
   it, and the reducer must see them in index order. *)
let test_order_preserved () =
  let expect = List.init 100 (fun i -> i * i) in
  Alcotest.(check (list int)) "sequential" expect (Exec.run Exec.sequential (square_plan 100));
  Alcotest.(check (list int)) "pool 2" expect (Exec.run (Exec.pool 2) (square_plan 100));
  Alcotest.(check (list int)) "pool 4" expect (Exec.run (Exec.pool 4) (square_plan 100))

let test_map () =
  let a = Exec.map (Exec.pool 3) ~jobs:17 (fun i -> 2 * i) in
  Alcotest.(check int) "length" 17 (Array.length a);
  Array.iteri (fun i v -> Alcotest.(check int) "value" (2 * i) v) a

let test_empty_and_tiny () =
  Alcotest.(check (list int)) "zero jobs" [] (Exec.run (Exec.pool 4) (square_plan 0));
  Alcotest.(check (list int)) "one job" [ 0 ] (Exec.run (Exec.pool 4) (square_plan 1));
  Alcotest.(check (list int)) "fewer jobs than workers" [ 0; 1; 4 ]
    (Exec.run (Exec.pool 4) (square_plan 3))

(* A raising job must propagate out of [run] (not hang the pool, not
   get swallowed by a worker domain). *)
exception Boom

let test_exception_propagates () =
  let plan =
    Exec.plan ~jobs:50
      ~job:(fun i -> if i = 31 then raise Boom else i)
      ~reduce:(fun _ -> ())
  in
  check_true "sequential raises"
    (try
       Exec.run Exec.sequential plan;
       false
     with Boom -> true);
  check_true "pool raises"
    (try
       Exec.run (Exec.pool 4) plan;
       false
     with Boom -> true)

(* The drain contract of exec.mli: a failing job re-raises with its
   backtrace, and the pool is left fully drained — no worker domain
   still running, so an immediately following pool run works normally. *)
let test_failure_drains_and_reraises () =
  Printexc.record_backtrace true;
  let failing =
    Exec.plan ~jobs:64
      ~job:(fun i -> if i = 13 then failwith "job 13" else i)
      ~reduce:(fun _ -> ())
  in
  let backtrace =
    match Exec.run (Exec.pool 4) failing with
    | () -> Alcotest.fail "failing plan returned"
    | exception Failure msg ->
        Alcotest.(check string) "original exception" "job 13" msg;
        Printexc.get_raw_backtrace ()
  in
  check_true "re-raised with a backtrace" (Printexc.raw_backtrace_length backtrace > 0);
  (* The pool drained: the same scheduler immediately runs a clean plan
     to completion (a leaked worker domain would still hold the cursor
     or deadlock the spawn path). *)
  let expect = List.init 40 (fun i -> i * i) in
  Alcotest.(check (list int)) "pool usable after failure" expect
    (Exec.run (Exec.pool 4) (square_plan 40))

(* A plan run from inside a pool job must fall back to sequential and
   still return the right answer (no nested domain explosion). *)
let test_nested_plan () =
  let outer =
    Exec.plan ~jobs:6
      ~job:(fun i ->
        let inner = Exec.plan ~jobs:5 ~job:(fun j -> i * j) ~reduce:(Array.fold_left ( + ) 0) in
        Exec.run (Exec.pool 4) inner)
      ~reduce:(fun a -> Array.to_list a)
  in
  let expect = List.init 6 (fun i -> i * 10) in
  Alcotest.(check (list int)) "nested totals" expect (Exec.run (Exec.pool 3) outer)

(* The other documented-but-untested exec.mli contract: the nested pool
   does not merely return the right answer, it actually runs
   sequentially on the worker's own domain (never spawns). Each inner
   job records the domain it ran on; all of them must equal the domain
   of the outer job that planned them. *)
let test_nested_pool_runs_sequentially () =
  let nested_domains =
    Exec.run (Exec.pool 3)
      (Exec.plan ~jobs:4
         ~job:(fun _ ->
           let outer_domain = (Domain.self () :> int) in
           let inner =
             Exec.map (Exec.pool 4) ~jobs:8 (fun _ -> (Domain.self () :> int))
           in
           (outer_domain, inner))
         ~reduce:Array.to_list)
  in
  List.iter
    (fun (outer_domain, inner) ->
      Array.iter
        (fun d -> Alcotest.(check int) "inner job on outer's domain" outer_domain d)
        inner)
    nested_domains

(* --- determinism of the full pipeline --- *)

(* The tentpole invariant: `run all` output is byte-identical for every
   worker count. Render every experiment through the one shared code
   path at quick scale and compare the concatenated bytes. *)
let rendered ~sched seed =
  Simulate.Registry.run_each ~sched ~rng:(rng_of_seed seed) ~scale:Simulate.Runner.Quick ()
  |> List.map (fun (o : Simulate.Registry.outcome) -> o.output)
  |> String.concat ""

let test_run_all_bytes_workers_seed42 () =
  let seq = rendered ~sched:Exec.sequential 42 in
  check_true "rendered something" (String.length seq > 2_000);
  Alcotest.(check string) "pool 4 = sequential" seq (rendered ~sched:(Exec.pool 4) 42)

let test_run_all_bytes_workers_seed7 () =
  let seq = rendered ~sched:Exec.sequential 7 in
  Alcotest.(check string) "pool 2 = sequential" seq (rendered ~sched:(Exec.pool 2) 7)

(* Same invariant one layer down: a single experiment's trial plans
   under a pool vs sequentially. E12 fans one job per trial. *)
let test_single_experiment_bytes () =
  let e12 =
    List.find (fun (e : Simulate.Registry.experiment) -> e.id = "E12") Simulate.Registry.all
  in
  let render sched =
    fst
      (Simulate.Registry.render_one ~sched ~rng:(rng_of_seed 11)
         ~scale:Simulate.Runner.Quick e12)
  in
  Alcotest.(check string) "E12 pool 4 = sequential" (render Exec.sequential)
    (render (Exec.pool 4))

(* --- deadlines on the monotonic clock --- *)

(* No sleeps: the monotonic source is injected, so expiry is a pure
   function of the fake clock. Restoring the real source in [finally]
   keeps the other suites honest. *)
let with_fake_monotonic f () =
  let t = ref 100. in
  Obs.Clock.set_monotonic (fun () -> !t);
  Fun.protect
    ~finally:(fun () -> Obs.Clock.set_monotonic Obs.Clock.monotonic_raw)
    (fun () -> f t)

let test_deadline_unarmed =
  with_fake_monotonic (fun t ->
      check_true "none is unarmed" (not (Exec.Deadline.armed Exec.Deadline.none));
      check_true "none never expires" (not (Exec.Deadline.expired Exec.Deadline.none));
      check_true "none waits forever"
        (Exec.Deadline.seconds_left Exec.Deadline.none = infinity);
      t := 1e12;
      check_true "still never expires" (not (Exec.Deadline.expired Exec.Deadline.none)))

let test_deadline_expiry =
  with_fake_monotonic (fun t ->
      let d = Exec.Deadline.arm 5. in
      check_true "armed" (Exec.Deadline.armed d);
      check_true "not expired yet" (not (Exec.Deadline.expired d));
      check_close ~eps:1e-9 "full time left" 5. (Exec.Deadline.seconds_left d);
      t := 104.9;
      check_true "still not expired" (not (Exec.Deadline.expired d));
      check_close ~eps:1e-9 "tenth of a second left" 0.1 (Exec.Deadline.seconds_left d);
      t := 105.;
      check_true "expires exactly on time" (Exec.Deadline.expired d);
      t := 107.;
      check_close ~eps:1e-9 "negative once past" (-2.) (Exec.Deadline.seconds_left d))

(* The bug the sweep fixes: hang deadlines used to sit on the wall
   clock, so an NTP step (or any Clock.set) could fire or starve them.
   Arming and expiry must be invariant under wall-clock jumps. *)
let test_deadline_ignores_wall_clock =
  with_fake_monotonic (fun t ->
      let d = Exec.Deadline.arm 10. in
      Obs.Clock.set (fun () -> 1e9);
      check_true "wall jump forward does not expire" (not (Exec.Deadline.expired d));
      Obs.Clock.set (fun () -> -1e9);
      check_true "wall jump backward does not extend"
        (Exec.Deadline.seconds_left d = 10.);
      Obs.Clock.set (fun () -> 0.);
      t := 110.;
      check_true "monotonic progress alone expires it" (Exec.Deadline.expired d))

(* --- --procs degradation is loud --- *)

(* A [procs] request that cannot shard (here: the plan carries no
   serialisable spec) must fall back to the in-process pool, still
   return the right answer, and say so: counter + recorded reason. *)
let test_procs_degradation_counted () =
  Exec.set_worker_command None;
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    (fun () ->
      let expect = List.init 20 (fun i -> i * i) in
      Alcotest.(check (list int)) "degraded run still correct" expect
        (Exec.run (Exec.procs 2) (square_plan 20));
      Alcotest.(check int) "exec.procs_degraded counted" 1
        (Obs.Metrics.value (Obs.Metrics.counter "exec.procs_degraded"));
      match Exec.last_procs_degradation () with
      | Some reason -> check_true "reason mentions the spec" (String.length reason > 0)
      | None -> Alcotest.fail "no degradation reason recorded")

let suites =
  [
    ( "exec.scheduler",
      [
        Alcotest.test_case "workers" `Quick test_workers;
        Alcotest.test_case "of_int" `Quick test_of_int;
      ] );
    ( "exec.plan",
      [
        Alcotest.test_case "order preserved" `Quick test_order_preserved;
        Alcotest.test_case "map" `Quick test_map;
        Alcotest.test_case "empty and tiny" `Quick test_empty_and_tiny;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "failure drains and re-raises" `Quick
          test_failure_drains_and_reraises;
        Alcotest.test_case "nested plan" `Quick test_nested_plan;
        Alcotest.test_case "nested pool runs sequentially" `Quick
          test_nested_pool_runs_sequentially;
      ] );
    ( "exec.determinism",
      [
        Alcotest.test_case "run all bytes, 4 workers, seed 42" `Slow
          test_run_all_bytes_workers_seed42;
        Alcotest.test_case "run all bytes, 2 workers, seed 7" `Slow
          test_run_all_bytes_workers_seed7;
        Alcotest.test_case "single experiment bytes" `Slow test_single_experiment_bytes;
      ] );
    ( "exec.deadline",
      [
        Alcotest.test_case "unarmed never expires" `Quick test_deadline_unarmed;
        Alcotest.test_case "arms and expires on the fake clock" `Quick test_deadline_expiry;
        Alcotest.test_case "ignores wall-clock jumps" `Quick test_deadline_ignores_wall_clock;
      ] );
    ( "exec.degradation",
      [
        Alcotest.test_case "--procs fallback is counted and explained" `Quick
          test_procs_degradation_counted;
      ] );
  ]
