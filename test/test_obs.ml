open Helpers

(* Every test leaves the global observability switches off so the other
   suites (goldens in particular) run on the production fast path. *)
let clean_slate () =
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  Obs.Clock.set (fun () -> 0.)

let with_clean f () =
  clean_slate ();
  Fun.protect ~finally:clean_slate f

(* --- metrics --- *)

let c_a = Obs.Metrics.counter "test.a"

let c_b = Obs.Metrics.counter "test.b"

let test_disabled_is_noop () =
  Obs.Metrics.incr c_a;
  Obs.Metrics.add c_a 10;
  Alcotest.(check int) "disabled increments don't count" 0 (Obs.Metrics.value c_a);
  check_true "disabled scope collects nothing" (snd (Obs.Metrics.with_scope (fun () -> Obs.Metrics.incr c_a)) = []);
  Alcotest.(check int) "not even under a scope" 0 (Obs.Metrics.value c_a)

let test_counter_basics () =
  Obs.Metrics.enable ();
  Obs.Metrics.incr c_a;
  Obs.Metrics.add c_a 41;
  Obs.Metrics.add c_b 5;
  Alcotest.(check int) "value merges stripes" 42 (Obs.Metrics.value c_a);
  check_true "interning by name" (Obs.Metrics.value (Obs.Metrics.counter "test.a") = 42);
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (option int)) "snapshot has a" (Some 42) (List.assoc_opt "test.a" snap);
  Alcotest.(check (option int)) "snapshot has b" (Some 5) (List.assoc_opt "test.b" snap);
  check_true "snapshot sorted by name"
    (List.sort compare (List.map fst snap) = List.map fst snap);
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c_a)

(* The tentpole invariant, one layer down: counter totals are work
   totals, so a pool computes the same numbers as sequential. *)
let test_counters_scheduler_independent () =
  Obs.Metrics.enable ();
  let total sched =
    Obs.Metrics.reset ();
    let plan =
      Exec.plan ~jobs:100
        ~job:(fun i ->
          Obs.Metrics.incr c_a;
          Obs.Metrics.add c_b i;
          i)
        ~reduce:(fun _ -> ())
    in
    Exec.run sched plan;
    (Obs.Metrics.value c_a, Obs.Metrics.value c_b)
  in
  let seq = total Exec.sequential in
  Alcotest.(check (pair int int)) "sequential totals" (100, 4950) seq;
  Alcotest.(check (pair int int)) "pool 4 = sequential" seq (total (Exec.pool 4));
  Alcotest.(check (pair int int)) "pool 2 = sequential" seq (total (Exec.pool 2))

let test_exec_counters () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Exec.run (Exec.pool 4) (Exec.plan ~jobs:7 ~job:(fun i -> i) ~reduce:(fun _ -> ()));
  let v name = Obs.Metrics.value (Obs.Metrics.counter name) in
  Alcotest.(check int) "plans" 1 (v "exec.plans");
  Alcotest.(check int) "claimed" 7 (v "exec.jobs_claimed");
  Alcotest.(check int) "completed" 7 (v "exec.jobs_completed");
  Alcotest.(check int) "failed" 0 (v "exec.jobs_failed")

let test_with_scope_attribution () =
  Obs.Metrics.enable ();
  Obs.Metrics.incr c_a;
  let (), deltas =
    Obs.Metrics.with_scope (fun () ->
        Obs.Metrics.add c_a 3;
        Obs.Metrics.incr c_b)
  in
  Alcotest.(check (option int)) "scope saw its own a" (Some 3) (List.assoc_opt "test.a" deltas);
  Alcotest.(check (option int)) "scope saw its own b" (Some 1) (List.assoc_opt "test.b" deltas);
  Alcotest.(check int) "globals include outside-scope work" 4 (Obs.Metrics.value c_a)

(* Attribution must survive the pool: the sink is captured with the plan
   and installed on whichever domain runs each job. *)
let test_with_scope_under_pool () =
  Obs.Metrics.enable ();
  let (), deltas =
    Obs.Metrics.with_scope (fun () ->
        Exec.run (Exec.pool 4)
          (Exec.plan ~jobs:64 ~job:(fun i -> Obs.Metrics.add c_a i) ~reduce:(fun _ -> ())))
  in
  Alcotest.(check (option int)) "all worker increments attributed" (Some 2016)
    (List.assoc_opt "test.a" deltas)

let test_scope_shadowing () =
  Obs.Metrics.enable ();
  let (), outer =
    Obs.Metrics.with_scope (fun () ->
        Obs.Metrics.incr c_a;
        let (), inner = Obs.Metrics.with_scope (fun () -> Obs.Metrics.add c_a 10) in
        Alcotest.(check (option int)) "inner sees inner" (Some 10) (List.assoc_opt "test.a" inner))
  in
  Alcotest.(check (option int)) "inner shadows outer (no accumulation outwards)" (Some 1)
    (List.assoc_opt "test.a" outer)

let test_timer_and_gauge () =
  let t = ref 0. in
  Obs.Clock.set (fun () -> !t);
  Obs.Metrics.enable ();
  let tm = Obs.Metrics.timer "test.timer" in
  let result =
    Obs.Metrics.time tm (fun () ->
        t := !t +. 1.5;
        "done")
  in
  Alcotest.(check string) "timer passes the result through" "done" result;
  check_close ~eps:1e-5 "accumulated seconds" 1.5 (Obs.Metrics.timer_seconds tm);
  let g = Obs.Metrics.gauge "test.gauge" in
  check_true "unset gauge is nan" (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set_gauge g 7.25;
  check_close "gauge holds last write" 7.25 (Obs.Metrics.gauge_value g);
  check_true "timers listed" (List.mem_assoc "test.timer" (Obs.Metrics.timers ()));
  check_true "gauges listed" (List.mem_assoc "test.gauge" (Obs.Metrics.gauges ()));
  check_true "snapshot never contains wall-clock metrics"
    (not (List.mem_assoc "test.timer" (Obs.Metrics.snapshot ())))

(* --- progress --- *)

(* Capture updates through a custom renderer — the same hook the fleet
   parent and the serve daemon use — with the wall clock under test
   control so throttling is deterministic. *)
let with_captured_progress f () =
  clean_slate ();
  let seen = ref [] in
  Obs.Progress.set_renderer (Some (fun u -> seen := u :: !seen));
  Fun.protect
    ~finally:(fun () ->
      Obs.Progress.set_renderer None;
      Obs.Progress.disable ();
      clean_slate ())
    (fun () -> f seen)

let test_progress_disabled_is_silent =
  with_captured_progress (fun seen ->
      Obs.Progress.begin_plan ~jobs:5;
      Obs.Progress.tick ();
      Obs.Progress.sub ~label:"E1" ~completed:1 ~total:2;
      Obs.Progress.end_plan ();
      check_true "nothing rendered while disabled" (!seen = []))

let test_progress_updates_and_sub =
  with_captured_progress (fun seen ->
      let t = ref 0. in
      Obs.Clock.set (fun () -> !t);
      Obs.Progress.enable ~label:"verify" ();
      Obs.Progress.begin_plan ~jobs:3;
      t := 1.;
      Obs.Progress.tick ();
      t := 2.;
      Obs.Progress.sub ~label:"E7" ~completed:40 ~total:105;
      t := 3.;
      Obs.Progress.tick ();
      t := 4.;
      Obs.Progress.tick ();
      Obs.Progress.end_plan ();
      match List.rev !seen with
      | [ u1; u2; u3; u4; ufinal ] ->
          Alcotest.(check int) "first tick" 1 u1.Obs.Progress.completed;
          Alcotest.(check string) "label carried" "verify" u1.Obs.Progress.label;
          Alcotest.(check int) "total carried" 3 u1.Obs.Progress.total;
          check_true "sub rides the update"
            (u2.Obs.Progress.sub = Some ("E7", 40, 105));
          check_true "tick clears sub state" (u3.Obs.Progress.sub = None);
          Alcotest.(check int) "last tick" 3 u4.Obs.Progress.completed;
          check_true "only the end-of-plan update is final"
            (ufinal.Obs.Progress.final
            && not (u1.Obs.Progress.final || u2.Obs.Progress.final || u3.Obs.Progress.final
                   || u4.Obs.Progress.final))
      | us -> Alcotest.failf "expected 5 updates, got %d" (List.length us))

let test_progress_throttles_on_clock =
  with_captured_progress (fun seen ->
      let t = ref 10. in
      Obs.Clock.set (fun () -> !t);
      Obs.Progress.enable ();
      Obs.Progress.begin_plan ~jobs:100;
      (* 50 ticks at one instant: only the first renders. *)
      for _ = 1 to 50 do
        Obs.Progress.tick ()
      done;
      Alcotest.(check int) "burst collapses to one line" 1 (List.length !seen);
      t := 10.2;
      Obs.Progress.tick ();
      Alcotest.(check int) "renders again once the clock moves" 2 (List.length !seen);
      Obs.Progress.end_plan ();
      match !seen with
      | ufinal :: _ ->
          check_true "final update skips the throttle" ufinal.Obs.Progress.final;
          Alcotest.(check int) "three renders total" 3 (List.length !seen)
      | [] -> Alcotest.fail "no updates")

(* --- trace --- *)

(* Run [f] under a fresh child frame so trace coordinates restart from a
   fixed origin; in-process repeats then produce identical paths. *)
let under_fresh_frame f =
  Obs.Ambient.with_job (Obs.Ambient.Active { sink = None; path = [||] }) ~plan:0 ~job:0 f

let test_trace_disabled_noop () =
  Obs.Trace.emit "should.not.appear" [];
  check_true "no events recorded while disabled" (Obs.Trace.events () = [])

let test_trace_determinism_across_schedulers () =
  let render sched =
    Obs.Trace.enable ();
    under_fresh_frame (fun () ->
        Exec.run sched
          (Exec.plan ~jobs:16
             ~job:(fun i ->
               Obs.Trace.emit "job.work" [ ("i", Int i) ];
               if i mod 4 = 0 then Obs.Trace.emit "job.extra" [ ("sq", Int (i * i)) ])
             ~reduce:(fun _ -> ())));
    let out = Obs.Trace.render_jsonl () in
    Obs.Trace.disable ();
    out
  in
  let seq = render Exec.sequential in
  check_true "rendered something" (String.length seq > 200);
  Alcotest.(check string) "pool 4 = sequential" seq (render (Exec.pool 4));
  Alcotest.(check string) "pool 2 = sequential" seq (render (Exec.pool 2))

let test_trace_event_shape () =
  Obs.Trace.enable ();
  under_fresh_frame (fun () ->
      Obs.Trace.emit "shape" [ ("k", Int 3); ("x", Float 0.5); ("s", Str "a\"b") ]);
  (match Obs.Trace.events () with
  | [ ev ] ->
      Alcotest.(check string) "name" "shape" ev.Obs.Trace.name;
      check_true "path is the fresh frame's" (ev.Obs.Trace.path = [| 0; 0 |]);
      Alcotest.(check int) "first event of the frame" 0 ev.Obs.Trace.seq
  | evs -> Alcotest.failf "expected exactly one event, got %d" (List.length evs));
  let line = Obs.Trace.render_jsonl () in
  check_true "json escapes the quote"
    (let needle = "\"s\":\"a\\\"b\"" in
     let nh = String.length line and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub line i nn = needle || go (i + 1)) in
     go 0)

let test_trace_ring_overflow () =
  Obs.Trace.enable ~capacity:4 ();
  under_fresh_frame (fun () ->
      for i = 1 to 10 do
        Obs.Trace.emit "tick" [ ("i", Int i) ]
      done);
  Alcotest.(check int) "kept capacity" 4 (List.length (Obs.Trace.events ()));
  Alcotest.(check int) "dropped the rest" 6 (Obs.Trace.dropped_events ());
  let out = Obs.Trace.render_jsonl () in
  check_true "overflow reported in the flush"
    (let needle = "\"ev\":\"trace.dropped\"" in
     let nh = String.length out and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub out i nn = needle || go (i + 1)) in
     go 0)

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "disabled is a no-op" `Quick (with_clean test_disabled_is_noop);
        Alcotest.test_case "counter basics" `Quick (with_clean test_counter_basics);
        Alcotest.test_case "scheduler independent" `Quick
          (with_clean test_counters_scheduler_independent);
        Alcotest.test_case "exec counters" `Quick (with_clean test_exec_counters);
        Alcotest.test_case "scope attribution" `Quick (with_clean test_with_scope_attribution);
        Alcotest.test_case "scope under pool" `Quick (with_clean test_with_scope_under_pool);
        Alcotest.test_case "scope shadowing" `Quick (with_clean test_scope_shadowing);
        Alcotest.test_case "timer and gauge" `Quick (with_clean test_timer_and_gauge);
      ] );
    ( "obs.progress",
      [
        Alcotest.test_case "disabled is silent" `Quick test_progress_disabled_is_silent;
        Alcotest.test_case "updates, sub state, final" `Quick test_progress_updates_and_sub;
        Alcotest.test_case "throttles on the wall clock" `Quick test_progress_throttles_on_clock;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "disabled is a no-op" `Quick (with_clean test_trace_disabled_noop);
        Alcotest.test_case "determinism across schedulers" `Quick
          (with_clean test_trace_determinism_across_schedulers);
        Alcotest.test_case "event shape and escaping" `Quick (with_clean test_trace_event_shape);
        Alcotest.test_case "ring overflow" `Quick (with_clean test_trace_ring_overflow);
      ] );
  ]
