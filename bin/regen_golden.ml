(* Regenerates the literal expectations of test/test_golden.ml.

   The golden suites pin exact flooding trajectories, arrival vectors
   and mean_time summaries per model family. They are invariants
   against *accidental* behaviour change: byte-identical results across
   `--jobs` worker counts and seeds is the contract; cross-version
   trajectory stability is not. When a PR deliberately changes an RNG
   draw sequence or an edge enumeration order (see DESIGN.md, "Golden
   tests and regeneration policy"), run

     dune exec bin/regen_golden.exe

   transcribe the printed literals into test/test_golden.ml, and say so
   in the changelog. The builders below must stay in sync with the test
   file. *)

let node_chain =
  Markov.Chain.of_rows
    (Array.init 8 (fun s ->
         Array.append [| ((s + 1) mod 8, 0.8) |] (Array.init 8 (fun t -> (t, 0.025)))))

let node_connect x y =
  let d = abs (x - y) in
  min d (8 - d) <= 1

let grid_family = Random_path.Family.grid_shortest ~rows:5 ~cols:5

let builders : (string * (unit -> Core.Dynamic.t)) list =
  [
    ("edge_meg_classic", fun () -> Edge_meg.Classic.make ~n:48 ~p:(3. /. 48.) ~q:0.4 ());
    ( "edge_meg_opportunistic",
      fun () ->
        Edge_meg.Opportunistic.make ~n:24
          {
            Edge_meg.Opportunistic.off_short = 2.;
            off_long = 8.;
            off_mix = 0.7;
            on_short = 1.5;
            on_long = 4.;
            on_mix = 0.6;
          } );
    ("node_meg", fun () -> Node_meg.Model.make ~n:40 ~chain:node_chain ~connect:node_connect ());
    ( "waypoint",
      fun () ->
        Mobility.Geo.dynamic (Mobility.Waypoint.create ~n:40 ~l:6. ~r:1.5 ~v_min:1. ~v_max:1.25 ())
    );
    ("random_walk", fun () -> Mobility.Random_walk_model.dynamic ~n:32 ~m:6 ~r:1.1 ());
    ("rp_model", fun () -> Random_path.Rp_model.make ~hold:0.5 ~n:30 ~family:grid_family ());
    ("rotating_star", fun () -> Adversarial.Model.rotating_star ~n:16);
    ( "filtered_complete",
      fun () ->
        Core.Dynamic.filter_edges ~p_keep:0.3 (Core.Dynamic.of_static (Graph.Builders.complete 20))
    );
    ( "union_star_matching",
      fun () ->
        Core.Dynamic.union
          (Adversarial.Model.rotating_star ~n:16)
          (Adversarial.Model.rotating_matching ~n:16) );
  ]

let int_array a =
  String.concat "; " (Array.to_list (Array.map string_of_int a))

let print_result name (r : Core.Flooding.result) =
  (match r.time with
  | Some t ->
      Printf.printf "%s:\n  ~time:(Some %d)\n  ~trajectory:[| %s |]\n" name t
        (int_array r.trajectory)
  | None ->
      (* Capped run: the trajectory is a prefix followed by a constant
         plateau — print the check_capped form. *)
      let len = Array.length r.trajectory in
      let plateau = r.trajectory.(len - 1) in
      let k = ref (len - 1) in
      while !k > 0 && r.trajectory.(!k - 1) = plateau do
        decr k
      done;
      Printf.printf "%s: CAPPED (len %d)\n  ~prefix:[| %s |] ~plateau:%d\n" name len
        (int_array (Array.sub r.trajectory 0 !k))
        plateau);
  Printf.printf "  ~arrivals:[| %s |]\n\n" (int_array r.arrivals)

let () =
  print_endline "=== plain flooding, seed 42, source 0 ===";
  List.iter
    (fun (name, build) ->
      print_result name (Core.Flooding.run ~rng:(Prng.Rng.of_seed 42) ~source:0 (build ())))
    builders;
  print_endline "=== Push(0.35), seed 42, source 0 ===";
  List.iter
    (fun (name, build) ->
      print_result ("push." ^ name)
        (Core.Flooding.run ~protocol:(Core.Flooding.Push 0.35) ~rng:(Prng.Rng.of_seed 42)
           ~source:0 (build ())))
    builders;
  print_endline "=== Parsimonious(2), cap 400, seed 7, source 1 ===";
  List.iter
    (fun (name, build) ->
      print_result ("pars." ^ name)
        (Core.Flooding.run ~protocol:(Core.Flooding.Parsimonious 2) ~cap:400
           ~rng:(Prng.Rng.of_seed 7) ~source:1 (build ())))
    builders;
  print_endline "=== mean_time, edge_meg_classic n=48, trials 12 ===";
  List.iter
    (fun seed ->
      List.iter
        (fun jobs ->
          let s =
            Core.Flooding.mean_time ~sched:(Exec.of_int jobs) ~rng:(Prng.Rng.of_seed seed)
              ~trials:12 (fun () -> Edge_meg.Classic.make ~n:48 ~p:(3. /. 48.) ~q:0.4 ())
          in
          Printf.printf "seed %d jobs %d: ~mean:%.17g ~stddev:%.17g ~max:%.17g\n" seed jobs
            (Stats.Summary.mean s) (Stats.Summary.stddev s) (Stats.Summary.max s))
        [ 1; 4 ])
    [ 42; 7 ]
