(* bench_diff: compare two machine-readable bench baselines.

   Usage:
     dune exec bin/bench_diff.exe -- OLD.json NEW.json \
       [--threshold PCT] [--gate NAME]...

   Reads two BENCH_*.json files (schema dyngraph-bench/1 through /6;
   /5 adds a "topology" object — worker domains and processes of the
   claim phase — shown in the header lines; /6 adds a "service" array
   of serve-daemon throughput/latency rows, one per client-concurrency
   level),
   prints per-claim wall-clock seconds and per-micro ns/run side by
   side with the delta as a percentage (positive = slower), and flags
   claim pass/fail transitions. Schema /3 baselines additionally carry
   a per-claim "metrics" object of deterministic work counters; when
   either file has them, their per-counter totals are diffed in a
   report-only table (counter changes mean the computation itself
   changed, so they never trip --threshold, which is about time).
   Service rows are likewise report-only — daemon throughput is too
   load-sensitive to gate — and a concurrency level present only in
   the NEW file renders as "new" with no delta.
   Without --threshold the run is report-only and always exits 0; with
   --threshold it exits 1 if any timing regression exceeds PCT percent
   or any claim flips from pass to fail.

   --gate NAME (repeatable) restricts the threshold to the named
   claims / micro-benchmarks: only their regressions can trip it,
   everything else stays report-only — the shape for CI, where a few
   stable hot-path micros gate and the noisier full table is for
   reading. Micro names match with or without their "dyngraph/" group
   prefix. A gated name absent from the comparison (dropped benchmark,
   renamed claim) is itself a failure: a gate that silently stops
   gating is worse than a red build. A gated name present only in the
   NEW file is fine — it is reported as a "new" row with no delta, so
   the gate on a first-appearance benchmark passes and starts biting
   on the next comparison. Pass/fail flips of any claim remain fatal
   regardless of gating. *)

(* --- minimal JSON reader (no external dependency) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= len then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= len then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code = int_of_string ("0x" ^ hex) in
              (* ASCII only; the writer never emits anything higher. *)
              Buffer.add_char buf (Char.chr (code land 0x7f));
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < len && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let str_or default j = match j with Some (Str s) -> s | _ -> default

let num_or default j = match j with Some (Num f) -> f | _ -> default

let bool_or default j = match j with Some (Bool b) -> b | _ -> default

(* --- baseline extraction --- *)

type claim = { id : string; passed : bool; seconds : float; metrics : (string * float) list }

type micro = { name : string; ns_per_run : float; r_square : float }

(* One serve-daemon load level. Keyed by [(executors, clients)]: levels
   are compared across baselines at equal executor count and
   concurrency. Baselines older than schema /7 carry no executor
   field; those rows load as executors = 1 (what they measured). *)
type service = {
  sv_executors : int;
  sv_clients : int;
  sv_completed : int;
  sv_errors : int;
  sv_rps : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
}

type baseline = {
  path : string;
  schema : string;
  date : string;
  git_rev : string;
  host : string;
  topology : string;
      (* rendered "jobs J procs P" from the schema /5 topology object;
         "-" for older baselines *)
  claims : claim list;
  micros : micro list;
  services : service list;
}

let load path =
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  let contents = really_input_string ic size in
  close_in ic;
  let j = parse_json contents in
  let claims =
    match member "claims" j with
    | Some (Arr l) ->
        List.map
          (fun c ->
            let metrics =
              match member "metrics" c with
              | Some (Obj fields) ->
                  List.filter_map
                    (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
                    fields
              | _ -> []
            in
            {
              id = str_or "?" (member "id" c);
              passed = bool_or false (member "passed" c);
              seconds = num_or nan (member "seconds" c);
              metrics;
            })
          l
    | _ -> []
  in
  let micros =
    match member "micro" j with
    | Some (Arr l) ->
        List.map
          (fun m ->
            {
              name = str_or "?" (member "name" m);
              ns_per_run = num_or nan (member "ns_per_run" m);
              r_square = num_or nan (member "r_square" m);
            })
          l
    | _ -> []
  in
  let services =
    match member "service" j with
    | Some (Arr l) ->
        List.map
          (fun r ->
            {
              sv_executors = int_of_float (num_or 1. (member "executors" r));
              sv_clients = int_of_float (num_or nan (member "clients" r));
              sv_completed = int_of_float (num_or 0. (member "completed" r));
              sv_errors = int_of_float (num_or 0. (member "errors" r));
              sv_rps = num_or nan (member "rps" r);
              sv_p50_ms = num_or nan (member "p50_ms" r);
              sv_p99_ms = num_or nan (member "p99_ms" r);
            })
          l
    | _ -> []
  in
  let topology =
    match member "topology" j with
    | Some t ->
        Printf.sprintf "jobs %d procs %d"
          (int_of_float (num_or nan (member "jobs" t)))
          (int_of_float (num_or nan (member "procs" t)))
    | None -> "-"
  in
  {
    path;
    schema = str_or "?" (member "schema" j);
    date = str_or "?" (member "date" j);
    git_rev = str_or "-" (member "git_rev" j);
    host = str_or "-" (member "hostname" j);
    topology;
    claims;
    micros;
    services;
  }

(* --- comparison --- *)

let delta_pct old_v new_v =
  if Float.is_finite old_v && Float.is_finite new_v && old_v > 0. then
    Some (100. *. (new_v -. old_v) /. old_v)
  else None

let delta_cell = function
  | Some d -> Stats.Table.Text (Printf.sprintf "%+.1f%%" d)
  | None -> Stats.Table.Missing

let () =
  let files = ref [] in
  let threshold = ref None in
  let gates = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t -> threshold := Some t
        | None ->
            prerr_endline "bench_diff: --threshold expects a percentage";
            exit 2);
        parse_args rest
    | "--gate" :: v :: rest ->
        gates := v :: !gates;
        parse_args rest
    | arg :: rest ->
        files := arg :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* A name is gated if it (or, for micros, its group-stripped form)
     was named by --gate; with no --gate everything gates, preserving
     the original all-or-nothing threshold. [gates_seen] records which
     gates actually matched a compared row. *)
  let gates_seen = Hashtbl.create 8 in
  let gated name =
    match !gates with
    | [] -> true
    | l ->
        let stripped =
          match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name
        in
        let hit = List.filter (fun g -> g = name || g = stripped) l in
        List.iter (fun g -> Hashtbl.replace gates_seen g ()) hit;
        hit <> []
  in
  let old_b, new_b =
    match List.rev !files with
    | [ o; n ] -> (
        try (load o, load n)
        with
        | Sys_error msg ->
            prerr_endline ("bench_diff: " ^ msg);
            exit 2
        | Parse msg ->
            prerr_endline ("bench_diff: JSON parse error: " ^ msg);
            exit 2)
    | _ ->
        prerr_endline "usage: bench_diff OLD.json NEW.json [--threshold PCT]";
        exit 2
  in
  Printf.printf "old: %s  (%s, %s, rev %s, host %s, %s)\n" old_b.path old_b.schema old_b.date
    old_b.git_rev old_b.host old_b.topology;
  Printf.printf "new: %s  (%s, %s, rev %s, host %s, %s)\n\n" new_b.path new_b.schema new_b.date
    new_b.git_rev new_b.host new_b.topology;
  let worst = ref neg_infinity in
  let flipped = ref [] in
  let claims_table =
    Stats.Table.create ~title:"claim tables (wall-clock seconds)"
      ~columns:[ "claim"; "old s"; "new s"; "delta"; "status" ]
  in
  List.iter
    (fun (oc : claim) ->
      match List.find_opt (fun (nc : claim) -> nc.id = oc.id) new_b.claims with
      | None -> Stats.Table.add_row claims_table [ Text oc.id; Fixed (oc.seconds, 3); Missing; Missing; Text "missing" ]
      | Some nc ->
          let d = delta_pct oc.seconds nc.seconds in
          (match d with Some d when gated oc.id && d > !worst -> worst := d | _ -> ());
          let status =
            match (oc.passed, nc.passed) with
            | true, false ->
                flipped := oc.id :: !flipped;
                "PASS->FAIL"
            | false, true -> "fail->pass"
            | true, true -> "pass"
            | false, false -> "fail"
          in
          Stats.Table.add_row claims_table
            [ Text oc.id; Fixed (oc.seconds, 3); Fixed (nc.seconds, 3); delta_cell d; Text status ])
    old_b.claims;
  List.iter
    (fun (nc : claim) ->
      if not (List.exists (fun (oc : claim) -> oc.id = nc.id) old_b.claims) then begin
        (* Mark the gate as seen: a first-appearance claim has no old
           value to regress against, so its gate passes vacuously. *)
        ignore (gated nc.id);
        Stats.Table.add_row claims_table
          [ Text nc.id; Missing; Fixed (nc.seconds, 3); Missing; Text "new" ]
      end)
    new_b.claims;
  print_string (Stats.Table.render claims_table);
  if old_b.micros <> [] || new_b.micros <> [] then begin
    let micro_table =
      Stats.Table.create ~title:"micro-benchmarks (ns/run)"
        ~columns:[ "benchmark"; "old ns"; "new ns"; "delta"; "fit" ]
    in
    (* A micro whose OLS fit has r² < 0.5 is mostly noise: its delta
       column is not evidence of anything, so say so in the row rather
       than let a ±40% swing read as a regression or a win. Flagged
       from either side's fit — a baseline recorded as noise stays
       suspect even if today's run happened to fit well. *)
    let fit_cell (om : micro option) (nm : micro option) =
      let low = function
        | Some m -> Float.is_finite m.r_square && m.r_square < 0.5
        | None -> false
      in
      if low om || low nm then Stats.Table.Text "low-r²" else Stats.Table.Text ""
    in
    List.iter
      (fun (om : micro) ->
        match List.find_opt (fun (nm : micro) -> nm.name = om.name) new_b.micros with
        | None ->
            Stats.Table.add_row micro_table
              [ Text om.name; Fixed (om.ns_per_run, 1); Missing; Text "missing";
                fit_cell (Some om) None ]
        | Some nm ->
            let d = delta_pct om.ns_per_run nm.ns_per_run in
            (match d with Some d when gated om.name && d > !worst -> worst := d | _ -> ());
            Stats.Table.add_row micro_table
              [ Text om.name; Fixed (om.ns_per_run, 1); Fixed (nm.ns_per_run, 1); delta_cell d;
                fit_cell (Some om) (Some nm) ])
      old_b.micros;
    List.iter
      (fun (nm : micro) ->
        if not (List.exists (fun (om : micro) -> om.name = nm.name) old_b.micros) then begin
          (* Same vacuous pass as for new claims: gating a micro that
             first appears in NEW must not fail as "gate not found". *)
          ignore (gated nm.name);
          Stats.Table.add_row micro_table
            [ Text nm.name; Missing; Fixed (nm.ns_per_run, 1); Text "new";
              fit_cell None (Some nm) ]
        end)
      new_b.micros;
    print_newline ();
    print_string (Stats.Table.render micro_table)
  end;
  (* Work-counter totals (schema /3), aggregated over all claims.
     Report-only: a changed counter means the computation did a
     different amount of work — worth seeing next to any timing delta,
     but not a regression by itself. *)
  let totals b =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (c : claim) ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k (v +. Option.value ~default:0. (Hashtbl.find_opt tbl k)))
          c.metrics)
      b.claims;
    tbl
  in
  let old_totals = totals old_b and new_totals = totals new_b in
  if Hashtbl.length old_totals > 0 || Hashtbl.length new_totals > 0 then begin
    let names = Hashtbl.create 32 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) old_totals;
    Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) new_totals;
    let sorted = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) names []) in
    let metrics_table =
      Stats.Table.create ~title:"work counters (total over claims, report-only)"
        ~columns:[ "counter"; "old"; "new"; "delta" ]
    in
    List.iter
      (fun name ->
        let o = Hashtbl.find_opt old_totals name and n = Hashtbl.find_opt new_totals name in
        let cell = function Some v -> Stats.Table.Int (int_of_float v) | None -> Stats.Table.Missing in
        let d = match (o, n) with Some o, Some n -> delta_pct o n | _ -> None in
        Stats.Table.add_row metrics_table [ Text name; cell o; cell n; delta_cell d ])
      sorted;
    print_newline ();
    print_string (Stats.Table.render metrics_table)
  end;
  (* Service tier, report-only: daemon throughput depends on machine
     load far more than the deterministic claim tables do, so
     rps/latency deltas are for reading, never for --threshold. First
     appearance of an (executors, clients) level (including the whole
     table, on the first service-carrying baseline) renders as "new". *)
  if old_b.services <> [] || new_b.services <> [] then begin
    let service_table =
      Stats.Table.create ~title:"service tier (serve daemon, report-only)"
        ~columns:
          [ "exec"; "clients"; "old rps"; "new rps"; "delta"; "old p99 ms"; "new p99 ms";
            "delta"; "status" ]
    in
    let status (r : service) = if r.sv_errors > 0 then "ERRORS" else "ok" in
    let same_level (a : service) (b : service) =
      a.sv_executors = b.sv_executors && a.sv_clients = b.sv_clients
    in
    List.iter
      (fun (os : service) ->
        match List.find_opt (fun (ns : service) -> same_level ns os) new_b.services with
        | None ->
            Stats.Table.add_row service_table
              [ Int os.sv_executors; Int os.sv_clients; Fixed (os.sv_rps, 1); Missing;
                Missing; Fixed (os.sv_p99_ms, 1); Missing; Missing; Text "missing" ]
        | Some ns ->
            Stats.Table.add_row service_table
              [ Int os.sv_executors; Int os.sv_clients; Fixed (os.sv_rps, 1);
                Fixed (ns.sv_rps, 1); delta_cell (delta_pct os.sv_rps ns.sv_rps);
                Fixed (os.sv_p99_ms, 1); Fixed (ns.sv_p99_ms, 1);
                delta_cell (delta_pct os.sv_p99_ms ns.sv_p99_ms); Text (status ns) ])
      old_b.services;
    List.iter
      (fun (ns : service) ->
        if not (List.exists (fun (os : service) -> same_level os ns) old_b.services) then
          Stats.Table.add_row service_table
            [ Int ns.sv_executors; Int ns.sv_clients; Missing; Fixed (ns.sv_rps, 1);
              Missing; Missing; Fixed (ns.sv_p99_ms, 1); Missing; Text ("new " ^ status ns) ])
      new_b.services;
    print_newline ();
    print_string (Stats.Table.render service_table)
  end;
  if Float.is_finite !worst then
    Printf.printf "\nworst %sregression: %+.1f%%\n"
      (if !gates = [] then "" else "gated ")
      !worst;
  List.iter (Printf.printf "claim %s flipped from pass to fail\n") (List.rev !flipped);
  let missing_gates = List.filter (fun g -> not (Hashtbl.mem gates_seen g)) (List.rev !gates) in
  List.iter (Printf.printf "gated name not found in comparison: %s\n") missing_gates;
  match !threshold with
  | None -> ()
  | Some t ->
      if !flipped <> [] || missing_gates <> [] || (Float.is_finite !worst && !worst > t) then begin
        Printf.printf "threshold %.1f%% exceeded\n" t;
        exit 1
      end
      else Printf.printf "within threshold %.1f%%\n" t
