(* Command-line driver for the claim-reproduction experiments.

   dyngraph list                 enumerate experiments
   dyngraph run E6 --seed 7      run one experiment
   dyngraph run all --full       run everything at paper scale
   dyngraph run all --jobs 8     same tables, computed on 8 worker domains
   dyngraph csv E1               emit the tables of one experiment as CSV *)

open Cmdliner

let seed_arg =
  let doc =
    "PRNG seed; runs are bit-reproducible per seed (and per seed only: the \
     worker count never changes a result)."
  in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let full_arg =
  let doc = "Run at paper scale (larger sweeps, more trials); shorthand for $(b,--scale full)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let scale_arg =
  let doc =
    "Sweep scale: $(b,quick) (CI-sized, the default), $(b,full) (the \
     paper-scale sweeps recorded in EXPERIMENTS.md) or $(b,large) \
     (quick-sized sweeps with 5 trials; the million-node off-heap tier \
     itself lives in the bench driver — see bench/main.ml). Overrides \
     $(b,--full)."
  in
  let scale_conv =
    Arg.enum
      [
        ("quick", Simulate.Runner.Quick);
        ("full", Simulate.Runner.Full);
        ("large", Simulate.Runner.Large);
      ]
  in
  Arg.(value & opt (some scale_conv) None & info [ "scale" ] ~docv:"SCALE" ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for the execution engine. 1 (the default) runs \
     sequentially; N runs independent trials and experiments on a pool of N \
     domains, producing byte-identical output for every N."
  in
  let env = Cmd.Env.info "DYNGRAPH_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~env ~docv:"N" ~doc)

let procs_arg =
  let doc =
    "Number of forked worker processes for the execution engine. 0 (the \
     default) keeps execution in-process; N shards whole experiments over a \
     fleet of N $(b,dyngraph worker) processes with byte-identical output for \
     every N. A crashed or wedged worker loses only its own shard, which is \
     re-run on a fresh worker. Composes with $(b,--jobs): each worker runs its \
     experiment's trial plans on that many domains. Defaults to \
     $(b,DYNGRAPH_PROCS) when set (unparsable values are ignored with a \
     warning)."
  in
  Arg.(value & opt int (Exec.default_procs ()) & info [ "procs" ] ~docv:"N" ~doc)

let journal_arg =
  let doc =
    "Checkpoint completed experiment shards to $(docv) (only meaningful with \
     $(b,--procs)). If the run is interrupted, re-running the same command \
     resumes from the journal instead of recomputing finished shards; a \
     journal recorded for a different seed/scale/command is discarded."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Collect work counters (rounds, snapshots, enumerated edges, RNG splits, \
     jobs) and print them after the results. Counter totals count work items, \
     so they are identical for every $(b,--jobs); wall-clock timers and gauges \
     go to stderr instead."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Write a structured JSONL trace of the run (trial and experiment \
     boundaries, flooding milestones, worker claims) to $(docv). Event lines \
     are ordered by structural coordinates, so two runs at different \
     $(b,--jobs) produce identical files modulo the wall field."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Report job completion progress on stderr (stdout is untouched)." in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* Observability bracketing shared by run/verify/csv: flip the switches
   before the work, flush trace and counters after it. Counters go to
   stdout (they are deterministic); timers and gauges carry wall-clock
   content and go to stderr so result output stays byte-comparable. *)
let obs_setup ~metrics ~trace ~progress =
  Obs.Clock.set Unix.gettimeofday;
  if metrics then Obs.Metrics.enable ();
  (match trace with Some _ -> Obs.Trace.enable () | None -> ());
  if progress then Obs.Progress.enable ()

let obs_finish ~metrics ~trace =
  (match trace with
  | Some path ->
      let oc = open_out path in
      Obs.Trace.write_jsonl oc;
      close_out oc;
      Printf.eprintf "trace: %d events -> %s\n%!"
        (List.length (Obs.Trace.events ())) path
  | None -> ());
  if metrics then begin
    print_newline ();
    print_endline "---- metrics (work counters) ----";
    List.iter (fun (name, v) -> Printf.printf "%-24s %d\n" name v) (Obs.Metrics.snapshot ());
    let timers = Obs.Metrics.timers () and gauges = Obs.Metrics.gauges () in
    if timers <> [] || gauges <> [] then begin
      Printf.eprintf "---- metrics (wall clock, nondeterministic) ----\n";
      List.iter (fun (name, s) -> Printf.eprintf "%-24s %.6fs\n" name s) timers;
      List.iter (fun (name, v) -> Printf.eprintf "%-24s %.6f\n" name v) gauges;
      flush stderr
    end
  end

(* Fleet wiring shared by run/verify: spawn workers as this very
   executable's `worker` subcommand, mirroring the parent's metrics and
   tracing switches so the deltas the workers ship back are complete.
   Returns the scheduler to use. *)
let fleet_setup ~procs ~jobs ~journal ~metrics ~trace ~progress =
  (* --jobs also drives intra-run tile parallelism (Exec.Pool): the
     off-heap flood scan and partitioned edge-MEG step fan out inside a
     single trial, with results identical at every jobs count. *)
  Exec.Pool.set_workers (max 1 jobs);
  if procs > 0 then begin
    let cmd =
      Array.of_list
        ([ Sys.executable_name; "worker" ]
        @ (if metrics then [ "--metrics" ] else [])
        @ (if trace <> None then [ "--trace-mem" ] else [])
        (* Workers never render progress themselves (their stderr is
           shared); --progress-pipe makes them forward ticks as framed
           'P' messages for the parent's single coherent line. *)
        @ (if progress then [ "--progress-pipe" ] else []))
    in
    Exec.set_worker_command (Some cmd);
    Exec.set_journal journal;
    Exec.procs procs
  end
  else Exec.of_int jobs

let id_arg =
  (* Derived from the registry so the range can never go stale again. *)
  let doc =
    let ids = List.map (fun (e : Simulate.Registry.experiment) -> e.id) Simulate.Registry.all in
    Printf.sprintf "Experiment id (%s .. %s) or 'all'." (List.hd ids)
      (List.nth ids (List.length ids - 1))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let resolve_scale scale full =
  match scale with
  | Some s -> s
  | None -> if full then Simulate.Runner.Full else Simulate.Runner.Quick

let list_cmd =
  let run () =
    List.iter
      (fun (e : Simulate.Registry.experiment) ->
        Printf.printf "%-4s %s\n     %s\n" e.id e.title e.claim)
      Simulate.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments") Term.(const run $ const ())

let resolve id =
  match Simulate.Registry.find id with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "unknown experiment %S (try 'list')" id)

let run_cmd =
  let run id seed scale_opt full jobs procs journal metrics trace progress =
    let rng = Prng.Rng.of_seed seed in
    let scale = resolve_scale scale_opt full in
    let sched = fleet_setup ~procs ~jobs ~journal ~metrics ~trace ~progress in
    obs_setup ~metrics ~trace ~progress;
    let result =
      if String.lowercase_ascii id = "all" then begin
        let spec =
          if procs > 0 then
            Some (Simulate.Fleet.specs ~render:Simulate.Registry.Full ~seed ~scale ~jobs)
          else None
        in
        let ok = Simulate.Registry.run_all ~sched ?spec ~rng ~scale () in
        if ok then Ok () else Error "some reproduction checks failed"
      end
      else
        match resolve id with
        | Ok e ->
            (* Planned experiments (Registry.plan) shard their trial
               bags across the fleet under a procs scheduler; the rest
               still degrade (loudly) to the domain pool inside Exec. *)
            let ok = Simulate.Registry.run_one ~sched ~rng ~scale e in
            if ok then Ok () else Error (Printf.sprintf "%s: some checks failed" e.id)
        | Error m -> Error m
    in
    obs_finish ~metrics ~trace;
    result
  in
  let term =
    Term.(
      term_result'
        (const run $ id_arg $ seed_arg $ scale_arg $ full_arg $ jobs_arg $ procs_arg
       $ journal_arg $ metrics_arg $ trace_arg $ progress_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an experiment, print its tables and scorecard")
    term

let verify_cmd =
  let run seed scale_opt full jobs procs journal metrics trace progress =
    let rng = Prng.Rng.of_seed seed in
    let scale = resolve_scale scale_opt full in
    let sched = fleet_setup ~procs ~jobs ~journal ~metrics ~trace ~progress in
    obs_setup ~metrics ~trace ~progress;
    let spec =
      if procs > 0 then
        Some (Simulate.Fleet.specs ~render:Simulate.Registry.Scorecard ~seed ~scale ~jobs)
      else None
    in
    (* Shares Registry.run_each with `run all`: same substream per
       experiment, so these scorecards match `run all --seed N` exactly. *)
    let failed = Simulate.Registry.verify ~sched ?spec ~rng ~scale () in
    let result =
      if failed = 0 then begin
        print_endline "all reproduction checks passed";
        Ok ()
      end
      else Error (Printf.sprintf "%d experiment(s) with failing checks" failed)
    in
    obs_finish ~metrics ~trace;
    result
  in
  let term =
    Term.(
      term_result'
        (const run $ seed_arg $ scale_arg $ full_arg $ jobs_arg $ procs_arg $ journal_arg
       $ metrics_arg $ trace_arg $ progress_arg))
  in
  Cmd.v (Cmd.info "verify" ~doc:"Run all experiments, print only the scorecards") term

let outdir_arg =
  let doc = "Write one CSV file per table into this directory instead of stdout." in
  Arg.(value & opt (some string) None & info [ "outdir" ] ~docv:"DIR" ~doc)

let csv_cmd =
  let run id seed scale_opt full jobs outdir metrics trace progress =
    let rng = Prng.Rng.of_seed seed in
    let scale = resolve_scale scale_opt full in
    let sched = Exec.of_int jobs in
    Exec.Pool.set_workers (max 1 jobs);
    obs_setup ~metrics ~trace ~progress;
    let result =
      match (String.lowercase_ascii id, outdir) with
      | "all", Some dir ->
          let paths = Simulate.Export.export_all ~sched ~dir ~rng ~scale () in
          List.iter print_endline paths;
          Ok ()
      | "all", None -> Error "csv all requires --outdir"
      | _, _ -> (
          match resolve id with
          | Error m -> Error m
          | Ok e -> (
              match outdir with
              | Some dir ->
                  let paths = Simulate.Export.export_experiment ~sched ~dir ~rng ~scale e in
                  List.iter print_endline paths;
                  Ok ()
              | None ->
                  let tables = e.run ~sched ~rng ~scale in
                  List.iter (fun t -> print_string (Stats.Table.to_csv t)) tables;
                  Ok ()))
    in
    obs_finish ~metrics ~trace;
    result
  in
  let term =
    Term.(
      term_result'
        (const run $ id_arg $ seed_arg $ scale_arg $ full_arg $ jobs_arg $ outdir_arg
       $ metrics_arg $ trace_arg $ progress_arg))
  in
  Cmd.v (Cmd.info "csv" ~doc:"Run experiments and emit CSV (stdout or --outdir)") term

let worker_cmd =
  (* The fleet worker entry point: spawned by a parent dyngraph running
     with --procs, never by hand. Speaks the length-prefixed protocol of
     Exec.Worker.serve on stdin/stdout; the parent passes --metrics /
     --trace-mem to mirror its own observability switches so the deltas
     shipped back are complete. *)
  let metrics_flag =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Collect work counters for the parent.")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace-mem" ]
          ~doc:"Record trace events in memory and ship them to the parent.")
  in
  let progress_pipe_flag =
    Arg.(
      value & flag
      & info [ "progress-pipe" ]
          ~doc:
            "Forward progress ticks to the parent as framed pipe messages \
             (workers never write progress to the shared stderr).")
  in
  let run metrics trace_mem progress_pipe =
    Obs.Clock.set Unix.gettimeofday;
    if metrics then Obs.Metrics.enable ();
    if trace_mem then Obs.Trace.enable ();
    Simulate.Fleet.serve ~forward_progress:progress_pipe ()
  in
  let term = Term.(const run $ metrics_flag $ trace_flag $ progress_pipe_flag) in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Serve experiment shards over stdin/stdout (spawned by --procs)")
    term

let socket_arg =
  let doc = "Unix socket path of the daemon." in
  Arg.(value & opt string "dyngraph.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let tcp_arg =
    let doc = "Also listen on loopback TCP port $(docv)." in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let cache_arg =
    let doc =
      "Warm result-cache capacity (entries keyed by id/seed/scale/render); 0 \
       disables caching."
    in
    Arg.(value & opt int 64 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let executors_arg =
    let doc =
      "Concurrent executor threads draining the request queues. With one \
       executor, per-request progress frames are streamed; with more, \
       requests from different connections execute concurrently and \
       progress frames are suppressed."
    in
    Arg.(value & opt int 1 & info [ "executors" ] ~docv:"E" ~doc)
  in
  let serve_procs_arg =
    let doc =
      "Shard each request's trial plan across $(docv) worker processes \
       (experiments with serialisable trial plans; others fall back to the \
       in-process pool)."
    in
    Arg.(value & opt int 0 & info [ "procs" ] ~docv:"W" ~doc)
  in
  let run socket tcp jobs executors procs cache =
    (* The daemon always runs with a real clock and metrics: progress
       throttling, latency measurement and the per-request
       exec.procs_degraded surfacing all need them, and neither
       perturbs rendered experiment bytes. *)
    Obs.Clock.set Unix.gettimeofday;
    Obs.Metrics.enable ();
    if procs > 0 then
      (* Workers mirror the daemon's metrics and forward progress ticks
         as framed messages (liveness for hang detection). *)
      Exec.set_worker_command
        (Some [| Sys.executable_name; "worker"; "--metrics"; "--progress-pipe" |]);
    let config =
      {
        Serve.Server.socket_path = socket;
        tcp_port = tcp;
        jobs;
        executors;
        procs;
        cache_capacity = cache;
      }
    in
    let t = Serve.Server.create config in
    let stop _ = Serve.Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.eprintf
      "dyngraph serve: listening on %s%s (jobs %d, executors %d%s, cache %d)\n%!" socket
      (match tcp with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "")
      (max 1 jobs) (max 1 executors)
      (if procs > 0 then Printf.sprintf ", procs %d" procs else "")
      cache;
    Serve.Server.wait t
  in
  let term =
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ executors_arg $ serve_procs_arg
      $ cache_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived simulation daemon: concurrent NDJSON experiment \
          requests over a Unix (and optional TCP) socket, fair per-connection \
          scheduling, streamed progress frames, warm pool and result cache. \
          Results are byte-identical to the batch $(b,run) command. SIGTERM \
          shuts down cleanly.")
    term

let load_cmd =
  let tcp_arg =
    let doc = "Connect to the daemon on loopback TCP port $(docv) instead of the socket." in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(value & opt int 8 & info [ "requests" ] ~docv:"R" ~doc:"Requests issued per client.")
  in
  let ids_arg =
    let doc =
      "Comma-separated experiment ids to request, walked round-robin (client \
       $(i,i) starts at offset $(i,i), so the fleet collectively covers all of \
       them)."
    in
    Arg.(value & opt string "E1" & info [ "ids" ] ~docv:"IDS" ~doc)
  in
  let render_arg =
    let doc = "Result rendering: $(b,full) tables or the $(b,scorecard) summary." in
    let render_conv =
      Arg.enum [ ("full", Simulate.Registry.Full); ("scorecard", Simulate.Registry.Scorecard) ]
    in
    Arg.(value & opt render_conv Simulate.Registry.Full & info [ "render" ] ~docv:"MODE" ~doc)
  in
  let vary_seed_arg =
    let doc =
      "Give every request a distinct seed (base seed + request index) so \
       repeats miss the daemon's result cache — measures execution throughput \
       rather than cache hits."
    in
    Arg.(value & flag & info [ "vary-seed" ] ~doc)
  in
  let dump_arg =
    let doc =
      "Write each result's output verbatim to $(docv)/c<client>_r<k>_<id>.out \
       (for byte-identity checks against the batch CLI)."
    in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"DIR" ~doc)
  in
  let run socket tcp clients requests ids_s seed scale_opt full render vary_seed dump =
    let scale = resolve_scale scale_opt full in
    let ids =
      String.split_on_char ',' ids_s |> List.map String.trim |> List.filter (fun s -> s <> "")
    in
    let unknown = List.filter (fun id -> Simulate.Registry.find id = None) ids in
    if ids = [] then Error "no experiment ids given"
    else if unknown <> [] then
      Error (Printf.sprintf "unknown experiment(s): %s" (String.concat ", " unknown))
    else begin
      let connect () =
        match tcp with
        | Some port ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            fd
        | None ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            fd
      in
      let s =
        Serve.Load.run ~connect ~clients ~per_client:requests ~ids ~seed ~scale ~render
          ~vary_seed ?dump ()
      in
      Printf.printf "serve load: %d clients x %d requests (%s, scale %s)\n" s.Serve.Load.clients
        s.Serve.Load.per_client ids_s
        (Serve.Protocol.scale_to_string scale);
      Printf.printf "completed: %d  errors: %d  cached: %d  progress_frames: %d\n"
        s.Serve.Load.completed s.Serve.Load.errors s.Serve.Load.cached
        s.Serve.Load.progress_frames;
      Printf.printf "wall: %.3fs  rps: %.2f  p50: %.1fms  p99: %s  mean: %.1fms\n"
        s.Serve.Load.seconds s.Serve.Load.rps s.Serve.Load.p50_ms
        (Serve.Load.p99_to_string s) s.Serve.Load.mean_ms;
      if s.Serve.Load.errors > 0 then
        Error (Printf.sprintf "%d request(s) failed" s.Serve.Load.errors)
      else Ok ()
    end
  in
  let term =
    Term.(
      term_result'
        (const run $ socket_arg $ tcp_arg $ clients_arg $ requests_arg $ ids_arg $ seed_arg
       $ scale_arg $ full_arg $ render_arg $ vary_seed_arg $ dump_arg))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a running $(b,dyngraph serve) daemon with synthetic many-client \
          load and report throughput (requests/sec) and latency (p50/p99).")
    term

let bounds_cmd =
  (* A closed-form calculator for the paper's bounds: plug in model
     parameters, read off every applicable expression. *)
  let n_arg = Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc:"number of nodes") in
  let p_arg =
    Arg.(value & opt (some float) None & info [ "p" ] ~doc:"edge-MEG birth probability")
  in
  let q_arg =
    Arg.(value & opt float 0.5 & info [ "q" ] ~doc:"edge-MEG death probability")
  in
  let l_arg =
    Arg.(value & opt (some float) None & info [ "L" ] ~doc:"side of the mobility square")
  in
  let r_arg = Arg.(value & opt float 1.0 & info [ "r" ] ~doc:"transmission radius") in
  let v_arg = Arg.(value & opt float 1.0 & info [ "v" ] ~doc:"maximum node speed") in
  let run n p l r v q =
    let table =
      Stats.Table.create ~title:(Printf.sprintf "closed-form bounds at n = %d" n)
        ~columns:[ "bound"; "value"; "paper source" ]
    in
    let add name value source =
      Stats.Table.add_row table [ Text name; Float value; Text source ]
    in
    (match p with
    | Some p ->
        add "edge-MEG log n / log(1+np)" (Theory.Bounds.edge_meg_eq2 ~n ~p) "Eq. 2 [10]";
        add "edge-MEG Theorem 1 form" (Theory.Bounds.edge_meg_general ~n ~p ~q) "Appendix A";
        let ts = Markov.Two_state.make ~p ~q in
        add "per-edge stationary probability" (Markov.Two_state.stationary_on ts) "alpha";
        add "per-edge mixing time" (float_of_int (Markov.Two_state.mixing_time ts)) "T_mix"
    | None -> ());
    (match l with
    | Some l ->
        add "waypoint flooding bound" (Theory.Bounds.waypoint ~l ~v_max:v ~r ~n) "Sec. 4.1";
        add "waypoint mixing scale L/v" (l /. v) "[1, 29]";
        add "propagation lower bound L/(r+v)"
          (Theory.Bounds.lower_bound_propagation ~l ~r ~v)
          "trivial"
    | None -> ());
    add "log^2 n" (Theory.Bounds.log2n n) "-";
    add "log^3 n" (Theory.Bounds.log3n n) "-";
    print_string (Stats.Table.render table)
  in
  let term = Term.(const run $ n_arg $ p_arg $ l_arg $ r_arg $ v_arg $ q_arg) in
  Cmd.v (Cmd.info "bounds" ~doc:"Evaluate the paper's closed-form bounds") term

let () =
  let info =
    Cmd.info "dyngraph" ~version:"1.0.0"
      ~doc:"Flooding-time experiments on Markovian evolving graphs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; csv_cmd; verify_cmd; bounds_cmd; worker_cmd; serve_cmd; load_cmd ]))
